"""Structured results of a detection sweep.

Every cell reports the full reference-free detection scorecard — per
sensor ROC-AUC, detection rate at the operating threshold, effect size
with the derived required-measurement count, and the alarm/MTTD
timeline — and the :class:`SweepReport` renders the grid as JSON or as
the plain-text table the CLI prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.analysis.mttd import MttdResult
from ..errors import AnalysisError

#: The paper's run-time budget: fewer than ten traces, under 10 ms.
BUDGET_TRACES = 10
BUDGET_SECONDS = 10e-3


@dataclass(frozen=True)
class SensorOutcome:
    """Detection metrics of one sensor stream inside a cell.

    Attributes
    ----------
    sensor:
        Sensor index.
    roc_auc:
        Area under the ROC curve of the active-vs-baseline feature
        populations.
    detection_rate:
        Fraction of active traces above the cell's z-threshold.
    effect_size:
        Cohen's d between the populations (signed).
    n_required:
        Measurements for 95 %-power detection at alpha = 1e-3.
    first_alarm:
        Stream index of this sensor's first alarm (None = silent).
    """

    sensor: int
    roc_auc: float
    detection_rate: float
    effect_size: float
    n_required: int
    first_alarm: Optional[int]


@dataclass(frozen=True)
class SweepCellResult:
    """Evaluation of one grid cell.

    Attributes
    ----------
    label, trojan, reference, sensors:
        Cell identity (see :class:`~repro.sweep.grid.SweepCell`).
    n_baseline, n_active:
        Stream span lengths; the Trojan activates at ``n_baseline``.
    outcomes:
        Per-sensor metrics, in ``sensors`` order.
    alarm_index:
        Earliest alarm across the cell's sensor streams.
    mttd:
        Activation-to-alarm latency (false alarms classified, never a
        negative latency).
    features_db:
        The ``(n_sensors, n_traces)`` feature matrix (None when the
        grid drops features).
    """

    label: str
    trojan: str
    reference: str
    sensors: Tuple[int, ...]
    n_baseline: int
    n_active: int
    outcomes: Tuple[SensorOutcome, ...]
    alarm_index: Optional[int]
    mttd: MttdResult
    features_db: Optional[np.ndarray] = None

    @property
    def best(self) -> SensorOutcome:
        """The strongest sensor stream (highest ROC-AUC)."""
        if not self.outcomes:
            raise AnalysisError("cell has no sensor outcomes")
        return max(self.outcomes, key=lambda outcome: outcome.roc_auc)

    @property
    def within_budget(self) -> bool:
        """Whether the paper's <10 ms / <10 traces budget is met."""
        return self.mttd.within(BUDGET_SECONDS, BUDGET_TRACES)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        payload: Dict[str, object] = {
            "label": self.label,
            "trojan": self.trojan,
            "reference": self.reference,
            "sensors": list(self.sensors),
            "n_baseline": self.n_baseline,
            "n_active": self.n_active,
            "alarm_index": self.alarm_index,
            "within_budget": self.within_budget,
            "mttd": {
                "detected": self.mttd.detected,
                "false_alarm": self.mttd.false_alarm,
                "traces_to_detect": self.mttd.traces_to_detect,
                "mttd_s": self.mttd.mttd_s,
            },
            "outcomes": [
                {
                    "sensor": outcome.sensor,
                    "roc_auc": outcome.roc_auc,
                    "detection_rate": outcome.detection_rate,
                    "effect_size": _json_float(outcome.effect_size),
                    "n_required": outcome.n_required,
                    "first_alarm": outcome.first_alarm,
                }
                for outcome in self.outcomes
            ],
        }
        if self.features_db is not None:
            payload["features_db"] = self.features_db.tolist()
        return payload


@dataclass(frozen=True)
class SweepReport:
    """Results of one grid evaluation.

    Attributes
    ----------
    grid:
        Grid name.
    trace_period_s:
        Capture + processing cadence used for MTTD accounting.
    cells:
        Per-cell results, in grid order.
    """

    grid: str
    trace_period_s: float
    cells: Tuple[SweepCellResult, ...]

    @property
    def all_detected(self) -> bool:
        """Every cell raised a (true) alarm."""
        return all(cell.mttd.detected for cell in self.cells)

    @property
    def all_within_budget(self) -> bool:
        """Every cell met the paper's latency budget."""
        return all(cell.within_budget for cell in self.cells)

    def cell(self, label: str) -> SweepCellResult:
        """Look up a cell result by label."""
        for result in self.cells:
            if result.label == label:
                return result
        raise AnalysisError(f"sweep report has no cell {label!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of the whole report."""
        return {
            "grid": self.grid,
            "trace_period_s": self.trace_period_s,
            "n_cells": len(self.cells),
            "all_detected": self.all_detected,
            "all_within_budget": self.all_within_budget,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize the report to JSON."""
        return json.dumps(self.to_dict(), indent=indent)

    def format(self) -> str:
        """Render the grid as the CLI's plain-text table."""
        from ..experiments.reporting import format_table

        rows: List[Tuple[object, ...]] = []
        for cell in self.cells:
            best = cell.best
            mttd = cell.mttd
            if mttd.detected:
                latency = f"{mttd.mttd_s * 1e3:.2f} ms"
                traces = str(mttd.traces_to_detect)
            elif mttd.false_alarm:
                latency, traces = "FALSE ALARM", "-"
            else:
                latency, traces = "-", "-"
            rows.append(
                (
                    cell.label,
                    "/".join(str(s) for s in cell.sensors),
                    f"{best.roc_auc:.3f}",
                    f"{best.detection_rate:.0%}",
                    _n_required_label(best.n_required),
                    traces,
                    latency,
                    "yes" if cell.within_budget else "NO",
                )
            )
        header = (
            f"Detection sweep — grid {self.grid!r} ({len(self.cells)} cells, "
            f"trace period {self.trace_period_s * 1e3:.2f} ms)\n"
        )
        return header + format_table(
            [
                "cell",
                "sensors",
                "ROC-AUC",
                "det-rate",
                "meas#",
                "traces",
                "MTTD",
                "budget",
            ],
            rows,
        )


def _n_required_label(n_required: int) -> str:
    if n_required >= 10_000:
        return ">10,000"
    if n_required < 10:
        return "<10"
    return str(n_required)


def _json_float(value: float) -> "float | str":
    """JSON cannot carry infinities; keep them readable."""
    if np.isfinite(value):
        return float(value)
    return "inf" if value > 0 else "-inf"
