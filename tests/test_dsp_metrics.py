"""RMS / dB metrics and He's SNR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.metrics import db_amplitude, db_to_amplitude, rms, snr_rms_db
from repro.errors import AnalysisError


def test_rms_of_sine():
    t = np.linspace(0, 1, 10000, endpoint=False)
    assert rms(np.sin(2 * np.pi * 10 * t)) == pytest.approx(
        1 / np.sqrt(2), rel=1e-3
    )


def test_rms_of_constant():
    assert rms(np.full(100, -3.0)) == pytest.approx(3.0)


def test_rms_empty_rejected():
    with pytest.raises(AnalysisError):
        rms(np.array([]))


def test_snr_definition():
    """SNR = 20 log10(Vrms_signal / Vrms_noise) — paper Equation (1)."""
    signal = np.full(1000, 10.0)
    noise = np.full(1000, 0.1)
    assert snr_rms_db(signal, noise) == pytest.approx(40.0)


def test_snr_zero_noise_rejected():
    with pytest.raises(AnalysisError):
        snr_rms_db(np.ones(10), np.zeros(10))


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1e-6, max_value=1e6))
def test_db_roundtrip(ratio):
    assert db_to_amplitude(db_amplitude(np.array([ratio])))[0] == pytest.approx(
        ratio, rel=1e-9
    )


def test_db_amplitude_floor_guard():
    values = db_amplitude(np.array([0.0]))
    assert np.isfinite(values).all()
