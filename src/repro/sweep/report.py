"""Structured results of detection and localization sweeps.

Every detection cell reports the full reference-free detection
scorecard — per sensor ROC-AUC, detection rate at the operating
threshold, effect size with the derived required-measurement count,
and the alarm/MTTD timeline.  Every localization cell reports the
reference-free localization scorecard — hit-rate over its repeats,
localization error [um], score-map margin [dB] and programmed
measurement windows to converge.  The :class:`SweepReport` carries
either kind of cell (or a mix) and renders the grid as JSON or as the
plain-text tables the CLI prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.analysis.mttd import MttdResult
from ..errors import AnalysisError
from ..report import ReportBase, Severity

#: The paper's run-time budget: fewer than ten traces, under 10 ms.
BUDGET_TRACES = 10
BUDGET_SECONDS = 10e-3


@dataclass(frozen=True)
class SensorOutcome:
    """Detection metrics of one sensor stream inside a cell.

    Attributes
    ----------
    sensor:
        Sensor index.
    roc_auc:
        Area under the ROC curve of the active-vs-baseline feature
        populations.
    detection_rate:
        Fraction of active traces above the cell's z-threshold.
    effect_size:
        Cohen's d between the populations (signed).
    n_required:
        Measurements for 95 %-power detection at alpha = 1e-3.
    first_alarm:
        Stream index of this sensor's first alarm (None = silent).
    """

    sensor: int
    roc_auc: float
    detection_rate: float
    effect_size: float
    n_required: int
    first_alarm: Optional[int]


@dataclass(frozen=True)
class SweepCellResult:
    """Evaluation of one grid cell.

    Attributes
    ----------
    label, trojan, reference, sensors:
        Cell identity (see :class:`~repro.sweep.grid.SweepCell`).
    n_baseline, n_active:
        Stream span lengths; the Trojan activates at ``n_baseline``.
    outcomes:
        Per-sensor metrics, in ``sensors`` order.
    alarm_index:
        Earliest alarm across the cell's sensor streams.
    mttd:
        Activation-to-alarm latency (false alarms classified, never a
        negative latency).
    detector:
        Registered detection method that evaluated the cell.
    features_db:
        The ``(n_sensors, n_traces)`` feature matrix (None when the
        grid drops features).
    """

    label: str
    trojan: str
    reference: str
    sensors: Tuple[int, ...]
    n_baseline: int
    n_active: int
    outcomes: Tuple[SensorOutcome, ...]
    alarm_index: Optional[int]
    mttd: MttdResult
    detector: str = "welford"
    features_db: Optional[np.ndarray] = None

    @property
    def best(self) -> SensorOutcome:
        """The strongest sensor stream (highest ROC-AUC)."""
        if not self.outcomes:
            raise AnalysisError("cell has no sensor outcomes")
        return max(self.outcomes, key=lambda outcome: outcome.roc_auc)

    @property
    def within_budget(self) -> bool:
        """Whether the paper's <10 ms / <10 traces budget is met."""
        return self.mttd.within(BUDGET_SECONDS, BUDGET_TRACES)

    @property
    def success(self) -> bool:
        """Whether the cell achieved its goal (a true detection)."""
        return self.mttd.detected

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        payload: Dict[str, object] = {
            "kind": "detection",
            "label": self.label,
            "trojan": self.trojan,
            "reference": self.reference,
            "detector": self.detector,
            "sensors": list(self.sensors),
            "n_baseline": self.n_baseline,
            "n_active": self.n_active,
            "alarm_index": self.alarm_index,
            "within_budget": self.within_budget,
            "mttd": {
                "detected": self.mttd.detected,
                "false_alarm": self.mttd.false_alarm,
                "traces_to_detect": self.mttd.traces_to_detect,
                "mttd_s": self.mttd.mttd_s,
            },
            "outcomes": [
                {
                    "sensor": outcome.sensor,
                    "roc_auc": outcome.roc_auc,
                    "detection_rate": outcome.detection_rate,
                    "effect_size": _json_float(outcome.effect_size),
                    "n_required": outcome.n_required,
                    "first_alarm": outcome.first_alarm,
                }
                for outcome in self.outcomes
            ],
        }
        if self.features_db is not None:
            payload["features_db"] = self.features_db.tolist()
        return payload


@dataclass(frozen=True)
class LocalizeOutcome:
    """One localization repeat inside a cell.

    Attributes
    ----------
    hit:
        Whether the flow localized to the true host sensor (and, when
        refinement ran, the true quadrant).
    sensor_index:
        The hot sensor the score map selected.
    quadrant:
        Refined quadrant (None when refinement was disabled).
    margin_db:
        Score-map gap between the hot sensor and the runner-up [dB].
    error_um:
        Distance between the position estimate and the true Trojan
        center [um].
    windows:
        Programmed measurement windows used by the whole flow (score
        map + refinement + optional adaptive scan).
    scan_windows:
        Windows used by the adaptive coarse scan (None = scan off).
    scan_error_um:
        Coarse-scan position error [um] (None = scan off).
    """

    hit: bool
    sensor_index: int
    quadrant: Optional[str]
    margin_db: float
    error_um: float
    windows: int
    scan_windows: Optional[int] = None
    scan_error_um: Optional[float] = None


@dataclass(frozen=True)
class LocalizeCellResult:
    """Evaluation of one localization grid cell.

    Attributes
    ----------
    label, trojan, reference:
        Cell identity (see :class:`~repro.sweep.localize.LocalizeCell`).
    host_sensor:
        Sensor the Trojan cluster was implanted under (ground truth).
    expected_quadrant:
        True quadrant of the Trojan inside the host sensor (None when
        refinement was disabled).
    outcomes:
        Per-repeat outcomes, in repeat order.
    details:
        The underlying per-repeat
        :class:`~repro.core.analysis.localizer.LocalizationResult`
        objects (None unless the grid keeps details).
    """

    label: str
    trojan: str
    reference: str
    host_sensor: int
    expected_quadrant: Optional[str]
    outcomes: Tuple[LocalizeOutcome, ...]
    details: Optional[Tuple[object, ...]] = None

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise AnalysisError("localization cell has no outcomes")

    @property
    def n_repeats(self) -> int:
        """Localization repeats evaluated for the cell."""
        return len(self.outcomes)

    @property
    def hit_rate(self) -> float:
        """Fraction of repeats that localized to the true site."""
        return sum(o.hit for o in self.outcomes) / len(self.outcomes)

    @property
    def mean_error_um(self) -> float:
        """Mean localization error across repeats [um]."""
        return float(np.mean([o.error_um for o in self.outcomes]))

    @property
    def mean_margin_db(self) -> float:
        """Mean hot-sensor margin across repeats [dB]."""
        return float(np.mean([o.margin_db for o in self.outcomes]))

    @property
    def mean_windows(self) -> float:
        """Mean programmed measurement windows per repeat."""
        return float(np.mean([o.windows for o in self.outcomes]))

    @property
    def success(self) -> bool:
        """Whether every repeat localized to the true site."""
        return all(o.hit for o in self.outcomes)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "kind": "localize",
            "label": self.label,
            "trojan": self.trojan,
            "reference": self.reference,
            "host_sensor": self.host_sensor,
            "expected_quadrant": self.expected_quadrant,
            "n_repeats": self.n_repeats,
            "hit_rate": self.hit_rate,
            "mean_error_um": self.mean_error_um,
            "mean_margin_db": self.mean_margin_db,
            "mean_windows": self.mean_windows,
            "outcomes": [
                {
                    "hit": outcome.hit,
                    "sensor_index": outcome.sensor_index,
                    "quadrant": outcome.quadrant,
                    "margin_db": _json_float(outcome.margin_db),
                    "error_um": outcome.error_um,
                    "windows": outcome.windows,
                    "scan_windows": outcome.scan_windows,
                    "scan_error_um": outcome.scan_error_um,
                }
                for outcome in self.outcomes
            ],
        }


@dataclass(frozen=True)
class SweepReport(ReportBase):
    """Results of one grid evaluation.

    Renders through the shared :class:`~repro.report.ReportBase`
    surface (``to_json``/``to_table``/severity rollups/bundles); the
    JSON and table forms are byte-identical to the pre-``repro.report``
    formatter.

    Attributes
    ----------
    grid:
        Grid name.
    trace_period_s:
        Capture + processing cadence used for MTTD accounting (also
        the per-window capture cadence of localization cells).
    cells:
        Per-cell results, in grid order — detection cells
        (:class:`SweepCellResult`), localization cells
        (:class:`LocalizeCellResult`), or a mix.
    """

    grid: str
    trace_period_s: float
    cells: Tuple["SweepCellResult | LocalizeCellResult", ...]

    report_kind = "sweep"

    def severities(self):
        """One severity per cell, evaluation semantics.

        A sweep grades the detection flow, so the bad outcome is a
        cell that *failed* its goal: a clean success is OK, a false
        alarm (detection cells) or a partial hit-rate (localization
        cells) is a WARNING, and an outright miss is CRITICAL.
        """
        for cell in self.cells:
            if cell.success:
                yield Severity.OK
            elif isinstance(cell, SweepCellResult) and cell.mttd.false_alarm:
                yield Severity.WARNING
            elif (
                isinstance(cell, LocalizeCellResult) and cell.hit_rate > 0.0
            ):
                yield Severity.WARNING
            else:
                yield Severity.CRITICAL

    @property
    def all_detected(self) -> bool:
        """Every cell succeeded (true alarm / every-repeat hit)."""
        return all(cell.success for cell in self.cells)

    @property
    def all_within_budget(self) -> bool:
        """Every detection cell met the paper's latency budget."""
        return all(
            cell.within_budget
            for cell in self.cells
            if isinstance(cell, SweepCellResult)
        )

    def cell(self, label: str) -> "SweepCellResult | LocalizeCellResult":
        """Look up a cell result by label."""
        for result in self.cells:
            if result.label == label:
                return result
        raise AnalysisError(f"sweep report has no cell {label!r}")

    def detection_matrix(self) -> Dict[str, Dict[str, bool]]:
        """The detector × Trojan-class detected/missed matrix.

        ``matrix[detector][trojan]`` is True when that method's cell
        truly detected that Trojan class (a false alarm is a miss).
        This is the structure the committed expectation files under
        ``tests/data/`` pin — each method's blind spots are load-
        bearing, so a flip in either direction is a regression.
        """
        matrix: Dict[str, Dict[str, bool]] = {}
        for cell in self.cells:
            if not isinstance(cell, SweepCellResult):
                continue
            row = matrix.setdefault(cell.detector, {})
            if cell.trojan in row:
                raise AnalysisError(
                    f"grid evaluated {cell.trojan!r} twice under "
                    f"{cell.detector!r}; the detection matrix needs one "
                    "cell per (detector, trojan) pair"
                )
            row[cell.trojan] = cell.success
        return matrix

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of the whole report.

        ``all_within_budget`` is ``None`` when the grid holds no
        detection cells (no latency was measured, so a boolean would
        be vacuous).
        """
        has_detection = any(
            isinstance(cell, SweepCellResult) for cell in self.cells
        )
        return {
            "grid": self.grid,
            "trace_period_s": self.trace_period_s,
            "n_cells": len(self.cells),
            "all_detected": self.all_detected,
            "all_within_budget": (
                self.all_within_budget if has_detection else None
            ),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def format(self) -> str:
        """Render the grid as the CLI's plain-text table(s).

        Detection and localization cells each render their own table;
        a mixed grid prints both, in that order.
        """
        detection = [
            cell for cell in self.cells if isinstance(cell, SweepCellResult)
        ]
        localize = [
            cell for cell in self.cells if isinstance(cell, LocalizeCellResult)
        ]
        sections: List[str] = []
        if detection:
            sections.append(self._format_detection(detection))
        if localize:
            sections.append(self._format_localize(localize))
        return "\n\n".join(sections)

    def _format_detection(self, cells: List["SweepCellResult"]) -> str:
        from ..experiments.reporting import format_table

        rows: List[Tuple[object, ...]] = []
        for cell in cells:
            best = cell.best
            mttd = cell.mttd
            if mttd.detected:
                latency = f"{mttd.mttd_s * 1e3:.2f} ms"
                traces = str(mttd.traces_to_detect)
            elif mttd.false_alarm:
                latency, traces = "FALSE ALARM", "-"
            else:
                latency, traces = "-", "-"
            rows.append(
                (
                    cell.label,
                    cell.detector,
                    "/".join(str(s) for s in cell.sensors),
                    f"{best.roc_auc:.3f}",
                    f"{best.detection_rate:.0%}",
                    _n_required_label(best.n_required),
                    traces,
                    latency,
                    "yes" if cell.within_budget else "NO",
                )
            )
        header = (
            f"Detection sweep — grid {self.grid!r} ({len(cells)} cells, "
            f"trace period {self.trace_period_s * 1e3:.2f} ms)\n"
        )
        return header + format_table(
            [
                "cell",
                "detector",
                "sensors",
                "ROC-AUC",
                "det-rate",
                "meas#",
                "traces",
                "MTTD",
                "budget",
            ],
            rows,
        )

    def _format_localize(self, cells: List["LocalizeCellResult"]) -> str:
        from ..experiments.reporting import format_table

        rows: List[Tuple[object, ...]] = []
        for cell in cells:
            scan_windows = [
                o.scan_windows for o in cell.outcomes
                if o.scan_windows is not None
            ]
            rows.append(
                (
                    cell.label,
                    f"s{cell.host_sensor}",
                    cell.expected_quadrant or "-",
                    f"{cell.hit_rate:.0%}",
                    f"{cell.mean_error_um:.0f}",
                    f"{cell.mean_margin_db:.1f}",
                    f"{cell.mean_windows:.0f}",
                    f"{float(np.mean(scan_windows)):.0f}" if scan_windows else "-",
                    "yes" if cell.success else "NO",
                )
            )
        header = (
            f"Localization sweep — grid {self.grid!r} ({len(cells)} cells, "
            f"window period {self.trace_period_s * 1e3:.2f} ms)\n"
        )
        return header + format_table(
            [
                "cell",
                "host",
                "quad",
                "hit-rate",
                "err [um]",
                "margin [dB]",
                "windows",
                "scan-win",
                "ok",
            ],
            rows,
        )


def _n_required_label(n_required: int) -> str:
    if n_required >= 10_000:
        return ">10,000"
    if n_required < 10:
        return "<10"
    return str(n_required)


def _json_float(value: float) -> "float | str":
    """JSON cannot carry infinities; keep them readable."""
    if np.isfinite(value):
        return float(value)
    return "inf" if value > 0 else "-inf"
