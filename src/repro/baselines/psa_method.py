"""The proposed PSA, evaluated under the same Table I protocol.

All trace rendering goes through the PSA's measurement engine (one
batched render per population) — the per-sensor render loop this file
once duplicated with :mod:`repro.core.array` lives in
:class:`repro.engine.MeasurementEngine` now.
"""

from __future__ import annotations

import numpy as np

from ..chip.testchip import TestChip
from ..core.analysis.spectral import sideband_features_db
from ..core.array import ProgrammableSensorArray
from ..dsp.metrics import snr_rms_db
from ..errors import AnalysisError
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import reference_for, scenario_by_name
from .protocol import (
    EVALUATED_TROJANS,
    MethodReport,
    outcome_from_populations,
)

#: Sensor used for the comparison (covers the Trojan cluster).
MONITOR_SENSOR = 10


class PsaMethod:
    """Table I column "PSA (proposed)"."""

    name = "psa"
    localization = True
    runtime = True

    def __init__(
        self,
        chip: TestChip,
        campaign: MeasurementCampaign,
        psa: ProgrammableSensorArray | None = None,
    ):
        self.chip = chip
        self.campaign = campaign
        self.psa = psa or campaign.psa
        self.analyzer = SpectrumAnalyzer()

    def _monitor_batch(
        self, scenario_name: str, n_traces: int, index_offset: int
    ):
        scenario = scenario_by_name(scenario_name)
        indices = [index_offset + i for i in range(n_traces)]
        records = [self.campaign.record(scenario, index) for index in indices]
        return self.psa.render(
            records, trace_indices=indices, sensors=[MONITOR_SENSOR]
        )

    def _features(
        self, scenario_name: str, n_traces: int, index_offset: int
    ) -> np.ndarray:
        batch = self._monitor_batch(scenario_name, n_traces, index_offset)
        grid, display = self.analyzer.display_matrix(
            batch.samples[0], batch.fs
        )
        return sideband_features_db(grid, display, self.chip.config)

    def snr_db(self, n_traces: int = 3) -> float:
        """He-style SNR of the monitored PSA sensor."""
        signal = self._monitor_batch("baseline", n_traces, 0)
        noise = self._monitor_batch("idle", n_traces, 0)
        return snr_rms_db(
            signal.samples[0].ravel(), noise.samples[0].ravel()
        )

    def evaluate(self, n_traces: int = 10) -> MethodReport:
        """Run the full per-Trojan evaluation."""
        if n_traces < 4:
            raise AnalysisError("need at least 4 traces per population")
        report = MethodReport(
            name=self.name,
            localization=self.localization,
            runtime=self.runtime,
        )
        report.snr_db = self.snr_db()
        for trojan in EVALUATED_TROJANS:
            reference = reference_for(trojan).name
            inactive = self._features(reference, n_traces, 0)
            active = self._features(trojan, n_traces, 700)
            report.outcomes[trojan] = outcome_from_populations(
                trojan, inactive, active
            )
        return report
