"""Hardware Trojan models (Section V-A, modified from Trust-Hub).

Four Trojans with distinct triggers and payloads:

* :class:`T1AmCarrier` — amplitude-modulation radio carrier at 750 kHz,
  triggered periodically when a 21-bit counter reaches ``21'h1FFFFF``;
* :class:`T2KeyLeakInverters` — a chain of inverters attached to a key
  wire to amplify its leakage, triggered when the plaintext prefix is
  ``0xAAAA``;
* :class:`T3CdmaLeaker` — a CDMA channel Trojan spreading key bits with
  a PN code (always-on, external enable in experiments);
* :class:`T4DosHeater` — a denial-of-service heater bank that elevates
  power consumption (always-on, external enable in experiments).
"""

from .base import CycleContext, Trojan, block_pattern
from .t1_am_carrier import T1AmCarrier
from .t2_leakage import T2KeyLeakInverters
from .t3_cdma import T3CdmaLeaker
from .t4_dos import T4DosHeater
from .catalog import TROJAN_CATALOG, TrojanInfo, make_trojan, standard_trojans

__all__ = [
    "CycleContext",
    "Trojan",
    "block_pattern",
    "T1AmCarrier",
    "T2KeyLeakInverters",
    "T3CdmaLeaker",
    "T4DosHeater",
    "TROJAN_CATALOG",
    "TrojanInfo",
    "make_trojan",
    "standard_trojans",
]
