"""Standard sensor configuration and the control decoder."""

import pytest

from repro.chip.floorplan import DIE_SIZE, sensor_rect
from repro.core.decoder import PsaDecoder
from repro.core.grid import PITCH
from repro.core.sensors import (
    COLUMN_ORIGINS,
    N_SENSORS,
    ROW_ORIGINS,
    SENSOR_SIZE_PITCHES,
    quadrant_coil,
    sensor_grid_origin,
    standard_sensor_coil,
)
from repro.errors import CoilSynthesisError, GridProgrammingError


def test_sixteen_sensors():
    assert N_SENSORS == 16
    coils = [standard_sensor_coil(i) for i in range(16)]
    assert len({c.name for c in coils}) == 16


def test_origins_are_uniform_stride():
    assert COLUMN_ORIGINS == (0, 8, 16, 24)
    assert ROW_ORIGINS == tuple(reversed(COLUMN_ORIGINS))


def test_sensor_grid_matches_floorplan_rects():
    """Coil footprints coincide with the floorplan's sensor squares."""
    for index in range(16):
        coil = standard_sensor_coil(index)
        outer = coil.turn_rects[0]
        rect = sensor_rect(index)
        assert outer.x0 == pytest.approx(rect.x0, abs=1e-9)
        assert outer.y1 == pytest.approx(rect.y1, abs=1e-9)


def test_sensor10_covers_die_center():
    coil = standard_sensor_coil(10)
    outer = coil.turn_rects[0]
    assert outer.contains(DIE_SIZE * 0.6, DIE_SIZE * 0.4)


def test_default_turns():
    coil = standard_sensor_coil(7)
    assert coil.n_turns == 5
    assert coil.turn_rects[0].width == pytest.approx(
        SENSOR_SIZE_PITCHES * PITCH
    )


def test_diagonal_sensors_conflict_on_shared_corners():
    """Diagonally overlapping sensors (5 and 10) contend for corner
    T-gates — they must be time-multiplexed, not co-programmed."""
    from repro.core.grid import PsaGrid

    grid = PsaGrid()
    standard_sensor_coil(5).program(grid)
    with pytest.raises(GridProgrammingError):
        standard_sensor_coil(10).program(grid)


def test_row_adjacent_sensors_can_coexist():
    """Same-row sensors use disjoint corner sets, matching the paper's
    four simultaneous output channels (one sensor per row at a time)."""
    from repro.core.grid import PsaGrid

    grid = PsaGrid()
    standard_sensor_coil(5).program(grid)
    standard_sensor_coil(6).program(grid)
    assert grid.owners() == {"psa_sensor_5", "psa_sensor_6"}


def test_quadrant_coils_tile_sensor():
    for which in ("sw", "se", "nw", "ne"):
        coil = quadrant_coil(10, which)
        assert coil.n_turns == 1
        outer = coil.turn_rects[0]
        sensor = standard_sensor_coil(10).turn_rects[0]
        # Each quadrant coil stays within the sensor footprint.
        assert outer.x0 >= sensor.x0 - 1e-12
        assert outer.x1 <= sensor.x1 + 1e-12
    with pytest.raises(CoilSynthesisError):
        quadrant_coil(10, "north")


def test_sensor_origin_bounds():
    with pytest.raises(CoilSynthesisError):
        sensor_grid_origin(16)


def test_decoder_selects_all_sixteen():
    decoder = PsaDecoder()
    for code in range(16):
        outputs = decoder.select(code)
        assert outputs[code] == 1
        assert sum(outputs) == 1
        assert decoder.selected() == code


def test_decoder_rejects_bad_selection():
    decoder = PsaDecoder()
    with pytest.raises(GridProgrammingError):
        decoder.select(16)


def test_decoder_gate_count_is_plausible():
    decoder = PsaDecoder()
    # 4 inverters + 16 four-input ANDs (plus internal tree nodes).
    assert 20 <= decoder.n_gates <= 120
