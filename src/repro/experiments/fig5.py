"""Figure 5: zero-span time-domain signals at the 48 MHz sideband.

"even if different Trojans leaked their information at the same
frequency, the difference in their time-domain signals at 48 MHz can
still clearly differentiate different Trojans" — the harness captures
the four envelopes, extracts their features, and reports the
(unsupervised) classification of each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.analysis.identifier import TrojanIdentifier
from ..core.analysis.spectral import sideband_frequencies
from ..dsp.features import EnvelopeFeatures
from ..instruments.spectrum_analyzer import ZeroSpanResult
from ..workloads.scenarios import scenario_by_name
from .context import ExperimentContext, default_context
from .reporting import format_table, sparkline

#: The scenarios of Figure 5a-5d.
FIG5_TROJANS = ("T1", "T2", "T3", "T4")


@dataclass(frozen=True)
class Fig5Panel:
    """One zero-span capture with its analysis."""

    trojan: str
    capture: ZeroSpanResult
    features: EnvelopeFeatures
    predicted: str


@dataclass(frozen=True)
class Fig5Result:
    """All four Figure 5 panels."""

    panels: Dict[str, Fig5Panel]
    f_probe: float

    @property
    def identification_accuracy(self) -> float:
        """Fraction of Trojans correctly identified."""
        hits = sum(
            1 for name, panel in self.panels.items() if panel.predicted == name
        )
        return hits / len(self.panels)


def run_fig5(ctx: Optional[ExperimentContext] = None) -> Fig5Result:
    """Capture and classify the four zero-span envelopes."""
    ctx = ctx or default_context()
    f_probe = sideband_frequencies(ctx.config)[0]
    identifier = TrojanIdentifier(f_probe=f_probe)
    panels = {}
    for trojan in FIG5_TROJANS:
        record = ctx.campaign.record(scenario_by_name(trojan), 800)
        trace = ctx.psa.measure(record, 10, 800)
        capture = identifier.zero_span(trace)
        features = identifier.features(trace)
        panels[trojan] = Fig5Panel(
            trojan=trojan,
            capture=capture,
            features=features,
            predicted=identifier.classify_features(features),
        )
    return Fig5Result(panels=panels, f_probe=f_probe)


def format_fig5(result: Fig5Result) -> str:
    """Render the Figure 5 summary."""
    lines = [
        f"Figure 5 — zero-span envelopes at {result.f_probe/1e6:.0f} MHz"
    ]
    for trojan, panel in result.panels.items():
        normalized = panel.capture.envelope / max(
            panel.capture.envelope.max(), 1e-30
        )
        lines.append(f"{trojan}: {sparkline(normalized)}")
    rows = []
    for trojan, panel in result.panels.items():
        f = panel.features
        rows.append(
            (
                trojan,
                f"{f.dominant_freq/1e6:.2f}",
                f"{f.ripple:.2f}",
                f"{f.autocorr_peak:.2f}",
                f"{f.bimodality:.2f}",
                panel.predicted,
            )
        )
    lines.append(
        format_table(
            ["trojan", "dom. freq [MHz]", "ripple", "autocorr", "bimod",
             "identified as"],
            rows,
        )
    )
    lines.append(
        f"identification accuracy: {result.identification_accuracy:.0%} "
        "(paper: all 4 HTs classified)"
    )
    return "\n".join(lines)
