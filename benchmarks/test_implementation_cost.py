"""Section V-B — implementation cost.

Paper: single T-gate ~34 ohm; T-gates add ~5 % chip area; the PSA uses
6.25 % of a top layer's routing capacity vs 100 % for the single coil;
power overhead dominated by (negligible) leakage.
"""

import pytest

from repro.experiments.cost import format_cost, run_cost


def test_implementation_cost(benchmark):
    cost = benchmark(run_cost)
    assert cost.tgate_resistance_ohm == pytest.approx(34.0, rel=0.05)
    assert cost.area_overhead_fraction == pytest.approx(0.05, abs=0.01)
    assert cost.routing_capacity_fraction == pytest.approx(0.0625, abs=0.005)
    assert cost.single_coil_routing_fraction == 1.0
    assert cost.power_overhead_fraction < 0.01
    print()
    print(format_cost(cost))
