"""Spectrum computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.transforms import (
    amplitude_spectrum,
    average_spectra,
    band_slice,
    pick_peaks,
    resample_spectrum,
)
from repro.errors import AnalysisError

FS = 528e6


def _tone(freq, amp, n=8448, fs=FS):
    t = np.arange(n) / fs
    return amp * np.sin(2 * np.pi * freq * t)


def test_single_tone_amplitude():
    """An on-bin sine of peak A reads A/sqrt(2) RMS in its bin."""
    spec = amplitude_spectrum(_tone(33e6, 2.0), FS)
    assert spec.at(33e6) == pytest.approx(2.0 / np.sqrt(2.0), rel=1e-6)


def test_two_tones_resolve():
    trace = _tone(33e6, 1.0) + _tone(48e6, 0.25)
    spec = amplitude_spectrum(trace, FS)
    assert spec.at(48e6) == pytest.approx(0.25 / np.sqrt(2.0), rel=1e-6)
    assert spec.at(60e6) < 1e-9


def test_dc_bin_not_doubled():
    spec = amplitude_spectrum(np.full(1024, 0.5), FS)
    assert spec.amps[0] == pytest.approx(0.5)


@settings(max_examples=25, deadline=None)
@given(
    freq_bin=st.integers(min_value=4, max_value=400),
    amp=st.floats(min_value=1e-3, max_value=10.0),
)
def test_parseval_single_tone(freq_bin, amp):
    """Total spectral power equals time-domain power (Parseval)."""
    n = 4096
    freq = freq_bin * FS / n
    trace = _tone(freq, amp, n=n)
    spec = amplitude_spectrum(trace, FS)
    spectral_power = float(np.sum(spec.amps**2))
    time_power = float(np.mean(trace**2))
    assert spectral_power == pytest.approx(time_power, rel=1e-6)


def test_average_spectra_reduces_noise_variance():
    rng = np.random.default_rng(3)
    specs = [
        amplitude_spectrum(rng.normal(0, 1, 2048), FS) for _ in range(16)
    ]
    averaged = average_spectra(specs)
    single_var = np.var(specs[0].amps)
    avg_var = np.var(averaged.amps)
    assert avg_var < single_var / 4


def test_average_requires_matching_axes():
    a = amplitude_spectrum(np.zeros(256) + 1.0, FS)
    b = amplitude_spectrum(np.zeros(512) + 1.0, FS)
    with pytest.raises(AnalysisError):
        average_spectra([a, b])


def test_resample_to_display_grid():
    spec = amplitude_spectrum(_tone(48e6, 1.0), FS)
    display = resample_spectrum(spec, 0.0, 120e6, 2000)
    assert len(display) == 2000
    assert display.freqs[0] == 0.0
    assert display.freqs[-1] == pytest.approx(120e6)
    assert display.at(48e6) == pytest.approx(1.0 / np.sqrt(2.0), rel=0.05)


def test_resample_rejects_band_beyond_nyquist():
    spec = amplitude_spectrum(np.ones(256), 100e6)
    with pytest.raises(AnalysisError):
        resample_spectrum(spec, 0.0, 80e6)


def test_band_slice():
    spec = amplitude_spectrum(_tone(48e6, 1.0), FS)
    band = band_slice(spec, 40e6, 60e6)
    assert band.freqs[0] >= 40e6
    assert band.freqs[-1] <= 60e6
    assert band.amps.max() == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-6)


def test_pick_peaks_orders_and_separates():
    trace = _tone(30e6, 1.0) + _tone(60e6, 0.5) + _tone(61e6, 0.4)
    spec = amplitude_spectrum(trace, FS)
    peaks = pick_peaks(spec, n_peaks=2, min_separation_hz=5e6)
    freqs = [spec.freqs[i] for i in peaks]
    assert freqs[0] == pytest.approx(30e6, abs=1e5)
    # 61 MHz is inside the 60 MHz exclusion, so the second peak is 60.
    assert freqs[1] == pytest.approx(60e6, abs=1e5)


def test_pick_peaks_exclusion_list():
    trace = _tone(33e6, 1.0) + _tone(48e6, 0.5)
    spec = amplitude_spectrum(trace, FS)
    peaks = pick_peaks(
        spec, n_peaks=1, min_separation_hz=1e6, exclude=[33e6], exclusion_hz=2e6
    )
    assert spec.freqs[peaks[0]] == pytest.approx(48e6, abs=1e5)


def test_spectrum_db_reference():
    n = 4096
    freq = 78 * FS / n  # exactly on a bin
    spec = amplitude_spectrum(_tone(freq, np.sqrt(2.0) * 1e-6, n=n), FS)
    assert spec.db()[spec.bin_of(freq)] == pytest.approx(0.0, abs=0.1)
