"""Clock-edge-triggered oscilloscope capture.

Section VI-A: "an oscilloscope or a spectrum analyzer triggered by the
rising edge of the clock signal captures the amplified PSA output".
"""

from __future__ import annotations

import numpy as np

from ..errors import MeasurementError
from ..traces import Trace
from .adc import AdcSpec, quantize


class Oscilloscope:
    """Triggered capture with ADC quantization.

    Parameters
    ----------
    adc:
        Converter model.
    record_length:
        Samples per captured record (None = full trace).
    """

    def __init__(self, adc: AdcSpec | None = None, record_length: int | None = None):
        self.adc = adc or AdcSpec(n_bits=10, full_scale=1.0)
        self.record_length = record_length

    def capture(self, trace: Trace, trigger_sample: int = 0) -> Trace:
        """Capture from a trigger point onward, quantized.

        Parameters
        ----------
        trace:
            The analog input.
        trigger_sample:
            Sample index of the clock edge to align to.
        """
        if not 0 <= trigger_sample < trace.n_samples:
            raise MeasurementError(
                f"trigger sample {trigger_sample} outside the trace"
            )
        window = trace.samples[trigger_sample:]
        if self.record_length is not None:
            if self.record_length < 2:
                raise MeasurementError("record length must be >= 2")
            window = window[: self.record_length]
        if window.size < 2:
            raise MeasurementError("capture window too short")
        return Trace(
            samples=quantize(window, self.adc),
            fs=trace.fs,
            label=trace.label,
            scenario=trace.scenario,
            meta={**trace.meta, "quantized_bits": self.adc.n_bits},
        )

    def auto_range(self, trace: Trace, headroom: float = 1.25) -> "Oscilloscope":
        """Return a scope ranged to the trace's peak (with headroom)."""
        peak = float(np.max(np.abs(trace.samples)))
        if peak <= 0:
            raise MeasurementError("cannot auto-range a null trace")
        return Oscilloscope(
            adc=AdcSpec(n_bits=self.adc.n_bits, full_scale=peak * headroom),
            record_length=self.record_length,
        )
