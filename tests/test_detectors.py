"""Detector plugin registry: semantics, protocol, and welford pinning.

The registry tests pin the plugin contract (duplicate names raise,
lazy specs resolve on first use, unknown names list what exists); the
plugin tests pin each builtin's temporal semantics on synthetic
feature streams; and the welford-identity tests pin that the registry
route is *bit-identical* to constructing a
:class:`~repro.core.analysis.welford.DetectorBank` directly — the
refactor moved the paper's detector behind the registry without
changing a single bit of its output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import detectors
from repro.config import SimConfig
from repro.core.analysis.detector import DetectorConfig
from repro.core.analysis.spectral import (
    excess_display_bins,
    noise_floor_display_bins,
    sideband_display_bins,
    sideband_excess_db,
    sideband_features_db,
)
from repro.core.analysis.welford import DetectorBank
from repro.detectors import registry as registry_module
from repro.detectors.persistence import PersistenceConfig, PersistenceDetector
from repro.detectors.spectral import SpectralConfig, SpectralDetector
from repro.detectors.welford import WelfordDetector
from repro.errors import AnalysisError


@pytest.fixture()
def config() -> SimConfig:
    return SimConfig()


# -- registry semantics --------------------------------------------------------


class TestRegistry:
    def test_builtins_are_available(self):
        assert detectors.available() == ["persistence", "spectral", "welford"]

    def test_get_resolves_builtins(self):
        assert detectors.get("welford") is WelfordDetector
        assert detectors.get("spectral") is SpectralDetector
        assert detectors.get("persistence") is PersistenceDetector

    def test_unknown_name_lists_available(self):
        with pytest.raises(AnalysisError, match="unknown detector"):
            detectors.get("nope")
        with pytest.raises(
            AnalysisError, match="persistence, spectral, welford"
        ):
            detectors.get("nope")

    def test_duplicate_name_raises(self):
        with pytest.raises(AnalysisError, match="already registered"):
            detectors.register("welford", WelfordDetector)

    def test_register_decorator_and_cleanup(self):
        @detectors.register("test-dummy")
        class Dummy(WelfordDetector):
            name = "test-dummy"

        try:
            assert "test-dummy" in detectors.available()
            built = detectors.make_detector("test-dummy", 2)
            assert isinstance(built, Dummy)
        finally:
            del registry_module._REGISTRY["test-dummy"]

    def test_lazy_spec_resolves_on_first_get(self):
        registry_module._REGISTRY["test-lazy"] = (
            "repro.detectors.welford:WelfordDetector"
        )
        try:
            assert registry_module._REGISTRY["test-lazy"] == (
                "repro.detectors.welford:WelfordDetector"
            )
            assert detectors.get("test-lazy") is WelfordDetector
            # The resolved class is cached back into the registry.
            assert registry_module._REGISTRY["test-lazy"] is WelfordDetector
        finally:
            del registry_module._REGISTRY["test-lazy"]

    def test_bad_lazy_spec_reports_the_spec(self):
        registry_module._REGISTRY["test-bad"] = "repro.no_such_module:X"
        try:
            with pytest.raises(AnalysisError, match="failed to resolve"):
                detectors.get("test-bad")
        finally:
            del registry_module._REGISTRY["test-bad"]

    def test_non_detector_entry_rejected(self):
        registry_module._REGISTRY["test-notdet"] = (
            "repro.config:SimConfig"
        )
        try:
            with pytest.raises(AnalysisError, match="not a Detector"):
                detectors.get("test-notdet")
        finally:
            del registry_module._REGISTRY["test-notdet"]

    def test_make_detector_forwards_bank_config_to_welford_only(self):
        tuned = DetectorConfig(warmup=3, z_threshold=9.0)
        welford = detectors.make_detector("welford", 2, tuned)
        assert welford.config.z_threshold == 9.0
        spectral = detectors.make_detector("spectral", 2, tuned)
        assert isinstance(spectral.config, SpectralConfig)


# -- protocol / base class -----------------------------------------------------


class TestProtocol:
    def test_feature_kinds(self):
        assert WelfordDetector.feature_kind == "sideband-db"
        assert SpectralDetector.feature_kind == "sideband-excess-db"
        assert PersistenceDetector.feature_kind == "sideband-excess-db"

    def test_step_is_update_alias(self):
        detector = SpectralDetector(1)
        step = detector.step(np.array([50.0]))
        assert step.z[0] == 50.0

    def test_process_validates_shape(self):
        detector = SpectralDetector(2)
        with pytest.raises(AnalysisError, match="feature matrix"):
            detector.process(np.zeros((3, 4)))

    def test_non_finite_rejected(self):
        for detector in (
            WelfordDetector(1),
            SpectralDetector(1),
            PersistenceDetector(1),
        ):
            with pytest.raises(AnalysisError, match="non-finite"):
                detector.update(np.array([np.nan]))

    def test_display_bins_match_reduction(self, config):
        grid = np.linspace(0.0, 120e6, 2000)
        welford = WelfordDetector(1)
        np.testing.assert_array_equal(
            welford.display_bins(grid, config),
            sideband_display_bins(grid, config),
        )
        spectral = SpectralDetector(1)
        np.testing.assert_array_equal(
            spectral.display_bins(grid, config),
            excess_display_bins(grid, config),
        )

    def test_excess_bins_include_noise_probes(self, config):
        grid = np.linspace(0.0, 120e6, 2000)
        excess = set(excess_display_bins(grid, config).tolist())
        assert set(
            noise_floor_display_bins(grid, config).tolist()
        ) <= excess
        assert set(sideband_display_bins(grid, config).tolist()) <= excess

    def test_feature_reductions_delegate(self, config):
        rng = np.random.default_rng(7)
        grid = np.linspace(0.0, 120e6, 2000)
        amps = rng.uniform(1e-6, 1e-3, size=(3, grid.size))
        np.testing.assert_array_equal(
            WelfordDetector(1).features(grid, amps, config),
            sideband_features_db(grid, amps, config),
        )
        np.testing.assert_array_equal(
            SpectralDetector(1).features(grid, amps, config),
            sideband_excess_db(grid, amps, config),
        )
        np.testing.assert_array_equal(
            PersistenceDetector(1).features(grid, amps, config),
            sideband_excess_db(grid, amps, config),
        )


# -- welford plugin: bit-identical to the direct bank --------------------------


class TestWelfordPlugin:
    def test_timeline_bit_identical_to_detector_bank(self):
        rng = np.random.default_rng(42)
        features = rng.normal(90.0, 1.0, size=(3, 40))
        features[1, 25:] += 8.0  # a mid-stream level shift
        tuning = DetectorConfig(warmup=5)
        direct = DetectorBank(3, tuning).process(features)
        routed = detectors.make_detector("welford", 3, tuning).process(
            features
        )
        np.testing.assert_array_equal(direct.z, routed.z)
        np.testing.assert_array_equal(direct.armed, routed.armed)
        np.testing.assert_array_equal(direct.alarms, routed.alarms)

    def test_fit_absorbs_into_baseline(self):
        detector = WelfordDetector(1, DetectorConfig(warmup=4))
        for value in (10.0, 10.1, 9.9, 10.0):
            detector.fit(np.array([value]))
        assert detector.armed.all()
        z = detector.score(np.array([10.0]))
        assert np.isfinite(z[0])

    def test_score_does_not_mutate(self):
        detector = WelfordDetector(1, DetectorConfig(warmup=2))
        detector.fit(np.array([10.0]))
        detector.fit(np.array([10.2]))
        first = detector.score(np.array([12.0]))
        second = detector.score(np.array([12.0]))
        np.testing.assert_array_equal(first, second)

    def test_score_nan_before_warmup(self):
        detector = WelfordDetector(1, DetectorConfig(warmup=4))
        assert np.isnan(detector.score(np.array([10.0]))[0])


# -- spectral plugin -----------------------------------------------------------


class TestSpectralPlugin:
    def test_armed_from_window_zero(self):
        assert SpectralDetector(2).armed.all()

    def test_alarm_needs_consecutive_windows(self):
        detector = SpectralDetector(
            1, SpectralConfig(excess_threshold_db=30.0, consecutive=2)
        )
        assert not detector.update(np.array([40.0])).alarm[0]
        assert detector.update(np.array([40.0])).alarm[0]

    def test_streak_resets_after_alarm(self):
        detector = SpectralDetector(
            1, SpectralConfig(excess_threshold_db=30.0, consecutive=2)
        )
        detector.update(np.array([40.0]))
        assert detector.update(np.array([40.0])).alarm[0]
        # A full fresh run of consecutive windows is required again.
        assert not detector.update(np.array([40.0])).alarm[0]
        assert detector.update(np.array([40.0])).alarm[0]

    def test_sub_threshold_never_alarms(self):
        detector = SpectralDetector(
            1, SpectralConfig(excess_threshold_db=30.0, consecutive=1)
        )
        timeline = detector.process(np.full((1, 20), 20.0))
        assert not timeline.alarms.any()

    def test_config_validation(self):
        with pytest.raises(AnalysisError):
            SpectralConfig(consecutive=0)
        with pytest.raises(AnalysisError):
            SpectralConfig(excess_threshold_db=float("nan"))


# -- persistence plugin --------------------------------------------------------


class TestPersistencePlugin:
    def test_alarms_once_history_is_persistent(self):
        detector = PersistenceDetector(
            1, PersistenceConfig(excess_threshold_db=30.0, scales=(1, 4, 8))
        )
        timeline = detector.process(np.full((1, 14), 40.0))
        # Armed (and alarming) exactly when the coarsest scale fills.
        assert timeline.alarms[0].tolist().index(True) == 7

    def test_misses_short_activation_span(self):
        detector = PersistenceDetector(
            1, PersistenceConfig(excess_threshold_db=30.0, scales=(1, 4, 8))
        )
        stream = np.full((1, 14), 10.0)
        stream[0, 8:] = 40.0  # 6 active windows < the coarsest scale
        timeline = detector.process(stream)
        assert not timeline.alarms.any()

    def test_rising_edge_only(self):
        detector = PersistenceDetector(
            1, PersistenceConfig(excess_threshold_db=30.0, scales=(2,))
        )
        timeline = detector.process(np.full((1, 6), 40.0))
        assert timeline.alarms[0].sum() == 1  # latched after the edge

    def test_rearms_after_gap(self):
        detector = PersistenceDetector(
            1, PersistenceConfig(excess_threshold_db=30.0, scales=(2,))
        )
        stream = np.array([[40.0, 40.0, 10.0, 40.0, 40.0]])
        timeline = detector.process(stream)
        assert timeline.alarms[0].tolist() == [
            False, True, False, False, True
        ]

    def test_armed_tracks_depth(self):
        detector = PersistenceDetector(
            2, PersistenceConfig(excess_threshold_db=30.0, scales=(1, 3))
        )
        assert not detector.armed.any()
        detector.update(np.array([1.0, 1.0]))
        detector.update(np.array([1.0, 1.0]))
        assert not detector.armed.any()
        detector.update(np.array([1.0, 1.0]))
        assert detector.armed.all()

    def test_score_matches_update_statistic(self):
        config = PersistenceConfig(excess_threshold_db=30.0, scales=(3,))
        scoring = PersistenceDetector(1, config)
        stepping = PersistenceDetector(1, config)
        stream = [35.0, 41.0, 38.0, 36.0, 45.0]
        for value in stream[:-1]:
            scoring.fit(np.array([value]))
            stepping.update(np.array([value]))
        preview = scoring.score(np.array([stream[-1]]))
        step = stepping.update(np.array([stream[-1]]))
        np.testing.assert_allclose(preview, step.z)

    def test_config_validation(self):
        with pytest.raises(AnalysisError):
            PersistenceConfig(scales=())
        with pytest.raises(AnalysisError):
            PersistenceConfig(scales=(0, 4))
