"""Unit tests of the shared ``repro.report`` rendering surface.

Every operator-facing report (sweep, fleet, monitor session, serve
metrics) renders through :class:`~repro.report.ReportBase`; these
tests pin the contract itself — JSON byte-identity, severity rollups,
and the timestamped bundle writer — against a minimal toy report plus
the serve :class:`~repro.serve.metrics.MetricsSnapshot`.
"""

from __future__ import annotations

import json
from datetime import datetime, timezone

import pytest

from repro.errors import AnalysisError
from repro.report import SEVERITY_ORDER, ReportBase, Severity
from repro.serve import ChipGauge, MetricsSnapshot


class ToyReport(ReportBase):
    """The smallest possible report: a fixed payload + severities."""

    report_kind = "toy"

    def __init__(self, severities=()):
        self._severities = tuple(severities)

    def to_dict(self):
        return {"kind": "toy", "n_findings": len(self._severities)}

    def format(self):
        return f"toy report with {len(self._severities)} findings"

    def severities(self):
        return self._severities


def _gauge(chip, alarms=0, sheds=0):
    return ChipGauge(
        chip=chip,
        kind="replay",
        state="monitor",
        windows=10,
        queue_len=0,
        queued_windows=0,
        sheds=sheds,
        dropped_windows=0,
        alarms=alarms,
        first_alarm=7 if alarms else None,
        mttd_ms=None,
        done=True,
    )


def test_severity_order_is_exhaustive():
    assert set(SEVERITY_ORDER) == set(Severity)


def test_to_json_is_byte_identical_to_plain_dumps():
    report = ToyReport()
    assert report.to_json() == json.dumps(report.to_dict(), indent=2)
    assert report.to_table() == report.format()


def test_rollup_counts_every_level():
    report = ToyReport(
        [Severity.OK, Severity.CRITICAL, Severity.OK, Severity.WARNING]
    )
    assert report.severity_rollup() == {
        "ok": 2,
        "warning": 1,
        "critical": 1,
    }
    assert report.worst_severity is Severity.CRITICAL


def test_rollup_of_empty_report_is_all_zero_and_ok():
    report = ToyReport()
    assert report.severity_rollup() == {"ok": 0, "warning": 0, "critical": 0}
    assert report.worst_severity is Severity.OK


def test_rollup_rejects_untyped_severities():
    report = ToyReport(["critical"])
    with pytest.raises(AnalysisError, match="must yield Severity"):
        report.severity_rollup()


def test_write_bundle_pins_name_and_contents(tmp_path):
    report = ToyReport([Severity.WARNING])
    stamp = datetime(2026, 8, 8, 12, 0, 0, tzinfo=timezone.utc)
    bundle = report.write_bundle(tmp_path, stamp=stamp)
    assert bundle.parent == tmp_path
    assert bundle.name == f"toy-{stamp.strftime('%Y%m%dT%H%M%S%fZ')}"
    assert json.loads((bundle / "report.json").read_text()) == report.to_dict()
    assert (bundle / "report.txt").read_text() == report.format() + "\n"
    summary = json.loads((bundle / "summary.json").read_text())
    assert summary["kind"] == "toy"
    assert summary["worst"] == "warning"
    assert summary["severity"] == {"ok": 0, "warning": 1, "critical": 0}
    # A second bundle at the same stamp must not silently overwrite.
    with pytest.raises(FileExistsError):
        report.write_bundle(tmp_path, stamp=stamp)


def test_metrics_snapshot_renders_through_report_base():
    snapshot = MetricsSnapshot(
        uptime_s=12.3456,
        n_chips=3,
        windows_total=30,
        windows_per_sec=123.456,
        recent_windows_per_sec=100.0,
        alarms_total=2,
        sheds_total=1,
        backpressure_total=1,
        overload_active=True,
        queued_windows=8,
        high_water_windows=16,
        event_counts={"Alarm": 2},
        chips=(
            _gauge("a", alarms=2),
            _gauge("b", sheds=1),
            _gauge("c"),
        ),
        engine_sessions=(),
        store=None,
    )
    assert isinstance(snapshot, ReportBase)
    # alarming chip CRITICAL, shedding chip WARNING, healthy chip OK,
    # plus one WARNING for the active overload condition.
    assert snapshot.severity_rollup() == {
        "ok": 1,
        "warning": 2,
        "critical": 1,
    }
    assert snapshot.worst_severity is Severity.CRITICAL
    payload = snapshot.to_dict()
    assert payload["windows_per_sec"] == 123.46
    assert payload["uptime_s"] == 12.346
    assert [row["chip"] for row in payload["chips"]] == ["a", "b", "c"]
    assert snapshot.to_json() == json.dumps(payload, indent=2)
    text = snapshot.format()
    assert "overload ACTIVE" in text
    assert "8/16 queued" in text
