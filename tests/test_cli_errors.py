"""Friendly one-line CLI errors for unknown grid/detector names.

Unknown names must exit with status 2 and a single ``error:`` line on
stderr that lists what *is* available — never a traceback.
"""

from __future__ import annotations

import pytest

from repro.cli import main


def _run(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.err


@pytest.mark.parametrize(
    "argv, expects",
    [
        (
            ["sweep", "--grid", "bogus"],
            ("unknown sweep grid", "detectors-smoke", "localize-smoke"),
        ),
        (
            ["sweep", "--grid", "detectors-smoke", "--detector", "bogus"],
            ("unknown detector", "persistence, spectral, welford"),
        ),
        (
            ["monitor", "--detector", "bogus"],
            ("unknown detector", "persistence, spectral, welford"),
        ),
        (
            ["serve", "--selftest", "--detector", "bogus"],
            ("unknown detector", "persistence, spectral, welford"),
        ),
        (
            ["sweep", "--grid", "localize-smoke", "--detector", "spectral"],
            ("localization", "--detector"),
        ),
    ],
)
def test_unknown_names_exit_2_with_one_line_error(argv, expects, capsys):
    code, err = _run(argv, capsys)
    assert code == 2
    assert err.startswith("error: ")
    assert len(err.strip().splitlines()) == 1
    for fragment in expects:
        assert fragment in err


def test_detector_error_text_identical_across_commands(capsys):
    """sweep, monitor and serve share one friendly-error surface."""
    texts = set()
    for argv in (
        ["sweep", "--grid", "detectors-smoke", "--detector", "bogus"],
        ["monitor", "--detector", "bogus"],
        ["serve", "--selftest", "--detector", "bogus"],
    ):
        code, err = _run(argv, capsys)
        assert code == 2
        texts.add(err)
    assert len(texts) == 1
