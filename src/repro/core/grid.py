"""The PSA lattice: 36x36 wires with a T-gate at every crosspoint.

Section V-A: "It is a lattice including 36 horizontal wires, 36
vertical wires, and 1296 switches."  Vertical wire ``i`` runs at
``x = i * pitch`` on one metal layer (M8), horizontal wire ``j`` at
``y = j * pitch`` on the other (M7); the T-gate at crosspoint ``(i, j)``
joins the two layers through vias when enabled (Figure 1a).

The paper quotes 16 um lattice segments, which cannot tile the 1 mm die
with 36 wires; we keep the die-spanning interpretation (pitch =
die/35 = 28.6 um) and note the discrepancy in DESIGN.md.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set, Tuple

import numpy as np

from ..chip.floorplan import DIE_SIZE
from ..errors import GridProgrammingError

#: Wires per direction.
N_WIRES = 36

#: Total crosspoint switches.
N_SWITCHES = N_WIRES * N_WIRES

#: Lattice pitch [m].
PITCH = DIE_SIZE / (N_WIRES - 1)

#: Lattice wire width [m] (Section V-A: 1 um).
WIRE_WIDTH = 1.0e-6

#: A crosspoint: (vertical wire index, horizontal wire index).
Crosspoint = Tuple[int, int]


class PsaGrid:
    """Switch-state model of the PSA lattice.

    The grid tracks which T-gates are on and which programmed structure
    owns them, so conflicting programmings fail loudly instead of
    silently shorting two coils together.
    """

    def __init__(self) -> None:
        self._state = np.zeros((N_WIRES, N_WIRES), dtype=bool)
        self._owner: dict[Crosspoint, str] = {}

    # -- geometry ------------------------------------------------------------

    @staticmethod
    def check_index(i: int, j: int) -> None:
        """Validate a crosspoint index pair."""
        if not (0 <= i < N_WIRES and 0 <= j < N_WIRES):
            raise GridProgrammingError(
                f"crosspoint ({i}, {j}) outside the {N_WIRES}x{N_WIRES} lattice"
            )

    @staticmethod
    def position(i: int, j: int) -> Tuple[float, float]:
        """Die coordinates [m] of crosspoint ``(i, j)``."""
        PsaGrid.check_index(i, j)
        return (i * PITCH, j * PITCH)

    # -- switching -----------------------------------------------------------

    def turn_on(self, i: int, j: int, owner: str = "") -> None:
        """Enable one T-gate.

        Raises
        ------
        GridProgrammingError
            If the crosspoint is already owned by a different structure.
        """
        self.check_index(i, j)
        current = self._owner.get((i, j))
        if self._state[i, j] and current not in ("", owner):
            raise GridProgrammingError(
                f"crosspoint ({i}, {j}) already programmed by "
                f"{current!r}; release it before reprogramming"
            )
        self._state[i, j] = True
        self._owner[(i, j)] = owner

    def turn_off(self, i: int, j: int) -> None:
        """Disable one T-gate."""
        self.check_index(i, j)
        self._state[i, j] = False
        self._owner.pop((i, j), None)

    def is_on(self, i: int, j: int) -> bool:
        """Whether a T-gate is enabled."""
        self.check_index(i, j)
        return bool(self._state[i, j])

    def program(self, crosspoints: Iterable[Crosspoint], owner: str = "") -> int:
        """Enable a set of crosspoints atomically.

        Either all requested switches turn on, or (on conflict) the
        grid is left unchanged.  Returns the number of switches turned
        on.
        """
        requested = list(crosspoints)
        for i, j in requested:
            self.check_index(i, j)
            current = self._owner.get((i, j))
            if self._state[i, j] and current not in ("", owner):
                raise GridProgrammingError(
                    f"crosspoint ({i}, {j}) already programmed by "
                    f"{current!r}"
                )
        for i, j in requested:
            self._state[i, j] = True
            self._owner[(i, j)] = owner
        return len(requested)

    def release(self, owner: str) -> int:
        """Turn off every switch owned by ``owner``; returns the count."""
        victims = [point for point, who in self._owner.items() if who == owner]
        for i, j in victims:
            self.turn_off(i, j)
        return len(victims)

    def clear(self) -> None:
        """Turn every switch off."""
        self._state[:] = False
        self._owner.clear()

    # -- observation ---------------------------------------------------------

    @property
    def n_on(self) -> int:
        """Enabled switch count."""
        return int(self._state.sum())

    def on_crosspoints(self) -> Set[Crosspoint]:
        """Set of enabled crosspoints."""
        ii, jj = np.nonzero(self._state)
        return {(int(i), int(j)) for i, j in zip(ii, jj)}

    def owners(self) -> Set[str]:
        """Names of structures currently programmed."""
        return {who for who in self._owner.values() if who}

    def snapshot(self) -> np.ndarray:
        """Copy of the boolean switch matrix."""
        return self._state.copy()

    def iter_switches(self) -> Iterator[Tuple[int, int, bool]]:
        """Iterate ``(i, j, state)`` over all 1296 crosspoints."""
        for i in range(N_WIRES):
            for j in range(N_WIRES):
                yield (i, j, bool(self._state[i, j]))

    def ascii_art(self, step: int = 1) -> str:
        """Human-readable lattice picture ('#' = on, '.' = off).

        With ``step > 1`` each character covers a ``step x step`` block
        of crosspoints and shows '#' if *any* switch in the block is on,
        so programmed structures never vanish between samples.
        """
        if step < 1:
            raise GridProgrammingError(f"step must be >= 1, got {step}")
        rows = []
        for j_hi in range(N_WIRES, 0, -step):
            j_lo = max(j_hi - step, 0)
            rows.append(
                "".join(
                    "#"
                    if self._state[i : i + step, j_lo:j_hi].any()
                    else "."
                    for i in range(0, N_WIRES, step)
                )
            )
        return "\n".join(rows)
