"""The PCB measurement amplifier (THS4504D front-end).

Section VI-A: "The output of each output channel of the PSA is
amplified by a THS4504D OP-AMP with 50 dB DC gain and 200 MHz UGB".
Together with the PCB's AC coupling, the chain is modeled as a 50 dB
gain block with a 2nd-order 30 MHz high-pass (AC coupling + probe
response) and a 4th-order 105 MHz low-pass (closed-loop rolloff), plus
input-referred voltage noise.

The band shaping matters to the reproduction: it is why the 48 MHz and
84 MHz Trojan sidebands dominate their 18 MHz and 114 MHz images in the
displayed spectra.
"""

from __future__ import annotations

import numpy as np

from typing import Dict, Optional, Sequence, Tuple

from ..dsp.filters import (
    apply_transfer_batch,
    butter_highpass_response,
    butter_lowpass_response,
)
from ..errors import ConfigError
from ..units import from_db


class MeasurementAmplifier:
    """50 dB band-shaping amplifier with input-referred noise.

    Parameters
    ----------
    gain_db:
        Mid-band voltage gain [dB].
    f_highpass:
        High-pass corner [Hz] (2nd order).
    f_lowpass:
        Low-pass corner [Hz] (4th order).
    input_noise_density:
        Input-referred voltage noise [V/sqrt(Hz)].
    input_impedance:
        Differential input resistance [ohm]; forms a divider with the
        coil's series impedance.
    """

    def __init__(
        self,
        gain_db: float = 50.0,
        f_highpass: float = 30.0e6,
        f_lowpass: float = 105.0e6,
        input_noise_density: float = 5.0e-9,
        input_impedance: float = 10.0e3,
    ):
        if f_highpass >= f_lowpass:
            raise ConfigError("high-pass corner must sit below low-pass corner")
        if input_impedance <= 0:
            raise ConfigError("input impedance must be positive")
        self.gain_db = gain_db
        self.f_highpass = f_highpass
        self.f_lowpass = f_lowpass
        self.input_noise_density = input_noise_density
        self.input_impedance = input_impedance
        self._gain = from_db(gain_db)
        self._hp = butter_highpass_response(f_highpass, order=2)
        self._lp = butter_lowpass_response(f_lowpass, order=4)
        self._curve_cache: Dict[Tuple[float, int], np.ndarray] = {}

    # -- pickling (the engine's process backend ships amplifiers) ------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The response closures are derived state and not picklable.
        for derived in ("_hp", "_lp", "_curve_cache"):
            state.pop(derived, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._hp = butter_highpass_response(self.f_highpass, order=2)
        self._lp = butter_lowpass_response(self.f_lowpass, order=4)
        self._curve_cache = {}

    # -- transfer ------------------------------------------------------------

    def transfer(self, freqs: np.ndarray) -> np.ndarray:
        """Magnitude response |H(f)| including gain."""
        return self._gain * self._hp(freqs) * self._lp(freqs)

    def gain_curve(self, fs: float, n_samples: int) -> np.ndarray:
        """|H(f)| on the rFFT grid of an ``n_samples`` trace (cached).

        The batched render path multiplies thousands of trace spectra
        by the same curve; evaluating the Butterworth responses once
        per (fs, length) pair removes that per-trace cost.
        """
        key = (fs, n_samples)
        curve = self._curve_cache.get(key)
        if curve is None:
            freqs = np.fft.rfftfreq(n_samples, d=1.0 / fs)
            curve = self.transfer(freqs)
            curve.setflags(write=False)
            self._curve_cache[key] = curve
        return curve

    def source_divider(self, source_impedance: float) -> float:
        """Input voltage divider for a given source impedance."""
        if source_impedance < 0:
            raise ConfigError("source impedance must be >= 0")
        return self.input_impedance / (self.input_impedance + source_impedance)

    def input_noise_rms(self, fs: float) -> float:
        """Input-referred noise RMS over the Nyquist band."""
        return self.input_noise_density * np.sqrt(fs / 2.0)

    # -- signal path ---------------------------------------------------------

    def amplify(
        self,
        samples: np.ndarray,
        fs: float,
        rng: np.random.Generator | None = None,
        source_impedance: float = 0.0,
    ) -> np.ndarray:
        """Run a trace through the divider, noise injection and filter."""
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1:
            raise ConfigError("amplify expects a 1-D trace")
        return self.amplify_batch(
            samples[None, :],
            fs,
            rngs=None if rng is None else (rng,),
            source_impedance=source_impedance,
        )[0]

    def amplify_batch(
        self,
        samples: np.ndarray,
        fs: float,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        source_impedance: float = 0.0,
    ) -> np.ndarray:
        """Amplify a stack of traces, shape ``(n_traces, n_samples)``.

        The per-trace input-noise draws stay independent (one generator
        per row), but the divider scaling and the band-shaping filter
        run as single vectorized passes over the whole stack.
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 2:
            raise ConfigError("amplify_batch expects a 2-D trace stack")
        if rngs is not None and len(rngs) != samples.shape[0]:
            raise ConfigError(
                f"got {len(rngs)} generators for {samples.shape[0]} traces"
            )
        scaled = samples * self.source_divider(source_impedance)
        if rngs is not None:
            noise_rms = self.input_noise_rms(fs)
            for row, rng in zip(scaled, rngs):
                row += rng.normal(0.0, noise_rms, row.size)
        return apply_transfer_batch(scaled, fs, self.transfer)
