#!/usr/bin/env python
"""SNR comparison: PSA vs single coil vs external probes (Section VI-B).

Measures He's RMS-ratio SNR (paper Equation (1)) for all four receivers
under identical workloads and prints the comparison against the paper's
numbers, plus the Figure 3 spectrum difference.

Run:
    python examples/snr_comparison.py
"""

from repro.experiments.context import ExperimentContext
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.snr import format_snr, run_snr


def main() -> None:
    ctx = ExperimentContext.build()

    print("Section VI-B — SNR per receiver (Equation (1))")
    print(format_snr(run_snr(ctx, n_traces=2)))
    print()
    print(format_fig3(run_fig3(ctx, n_traces=2)))


if __name__ == "__main__":
    main()
