"""On-chip single-coil detection (He et al., DAC'20).

The closest prior art: one winding over the whole die, run-time capable
(no bench probe), but the coil encloses every supply loop's dipole pair
— the linked fluxes self-cancel, so the Trojan's differential
signature drowns in workload variation and >10,000 measurements are
needed (and the 329-cell T3 stays undetectable), matching Table I.
"""

from __future__ import annotations

from ..chip.testchip import TestChip
from ..em.probes import single_coil_receiver
from ..errors import AnalysisError
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import reference_for
from .common import ReceiverBench, euclidean_statistics, reference_spectrum
from .protocol import (
    EVALUATED_TROJANS,
    MethodReport,
    outcome_from_populations,
)


class SingleCoilMethod:
    """Table I column "On-chip Single Coil [1]"."""

    name = "single_coil"
    localization = False
    runtime = True

    def __init__(self, chip: TestChip, campaign: MeasurementCampaign):
        self.chip = chip
        self.campaign = campaign
        self.bench = ReceiverBench(chip, single_coil_receiver())

    def evaluate(self, n_traces: int = 12) -> MethodReport:
        """Run the full per-Trojan evaluation."""
        if n_traces < 4:
            raise AnalysisError("need at least 4 traces per population")
        report = MethodReport(
            name=self.name,
            localization=self.localization,
            runtime=self.runtime,
        )
        report.snr_db = self.bench.snr_db(self.campaign)
        for trojan in EVALUATED_TROJANS:
            reference = reference_for(trojan).name
            base_traces = self.bench.collect(self.campaign, reference, n_traces)
            active_traces = self.bench.collect(
                self.campaign, trojan, n_traces, index_offset=300
            )
            base_spectra = self.bench.spectra(base_traces)
            active_spectra = self.bench.spectra(active_traces)
            half = n_traces // 2
            ref = reference_spectrum(base_spectra[:half])
            inactive_stats = euclidean_statistics(base_spectra[half:], ref)
            active_stats = euclidean_statistics(active_spectra, ref)
            report.outcomes[trojan] = outcome_from_populations(
                trojan, inactive_stats, active_stats
            )
        return report
