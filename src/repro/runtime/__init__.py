"""``repro.runtime`` — the streaming run-time monitoring subsystem.

The paper's headline flow — golden-model-free **run-time** detection
with identify/localize escalation — as an always-on service path over
the batched measurement engine:

* :mod:`~repro.runtime.sources` — where windows come from: scripted
  live rendering (:class:`LiveSource`, bit-identical to the offline
  batch at any chunk size) or archive replay (:class:`ReplaySource`),
  behind one :class:`TraceStream` protocol.
* :mod:`~repro.runtime.pipeline` — the MONITOR → IDENTIFY → LOCALIZE
  state machine (:class:`EscalationPipeline`) with typed events.
* :mod:`~repro.runtime.events` — the event vocabulary, bus and JSONL
  audit sink.
* :mod:`~repro.runtime.fleet` — N concurrent chip monitors behind one
  cooperative, backpressured :class:`FleetScheduler`.
* :mod:`~repro.runtime.presets` — named session scripts for the CLI
  (``repro monitor --preset ... [--fleet N]``).
"""

from .events import (
    Alarm,
    Backpressure,
    EventBus,
    JsonlSink,
    MonitorEvent,
    MonitorState,
    Overload,
    Shed,
    StateChanged,
    TrojanIdentified,
    TrojanLocalized,
    WindowProcessed,
    read_events,
)
from .fleet import (
    ChipMonitor,
    ChipResult,
    ChipSpec,
    FleetReport,
    FleetScheduler,
    build_chip_monitor,
)
from .pipeline import (
    EscalationPipeline,
    MonitorReport,
    PipelineConfig,
    chunk_features,
)
from .timeline import WindowTimeline
from .presets import MONITOR_PRESETS, MonitorPreset, build_fleet, build_preset
from .sources import (
    ActivationSchedule,
    LiveSource,
    ReplaySource,
    StreamChunk,
    TraceStream,
    record_stream,
)

__all__ = [
    "ActivationSchedule",
    "Alarm",
    "Backpressure",
    "Overload",
    "Shed",
    "ChipMonitor",
    "ChipResult",
    "ChipSpec",
    "EscalationPipeline",
    "EventBus",
    "FleetReport",
    "FleetScheduler",
    "JsonlSink",
    "LiveSource",
    "MONITOR_PRESETS",
    "MonitorEvent",
    "MonitorPreset",
    "MonitorReport",
    "MonitorState",
    "PipelineConfig",
    "ReplaySource",
    "StateChanged",
    "StreamChunk",
    "TraceStream",
    "TrojanIdentified",
    "TrojanLocalized",
    "WindowProcessed",
    "WindowTimeline",
    "build_chip_monitor",
    "build_fleet",
    "build_preset",
    "chunk_features",
    "read_events",
    "record_stream",
]
