"""The ``shared`` backend: zero-copy transport, bit-identical output."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimConfig
from repro.engine import (
    BACKEND_NAMES,
    MeasurementEngine,
    SharedMemoryBackend,
    resolve_backend,
)
from repro.engine.shm import (
    SharedArrayRef,
    _InputArena,
    _attach,
    _pack_payload,
    _resolve_payload,
)
from repro.errors import ConfigError
from repro.workloads.scenarios import scenario_by_name


def test_backend_registered():
    assert "shared" in BACKEND_NAMES
    backend = resolve_backend("shared", workers=3)
    assert backend.name == "shared"
    assert backend.parallelism == 3
    backend.close()


def test_config_accepts_shared_backend():
    config = SimConfig(engine_backend="shared", engine_workers=2)
    assert config.engine_backend == "shared"
    with pytest.raises(ConfigError):
        SimConfig(engine_backend="bogus")


def test_arena_roundtrip_views():
    arena = _InputArena()
    a = np.arange(7.0)
    b = np.arange(12.0).reshape(3, 4)
    ref_a = arena.add(a)
    ref_b = arena.add(b)
    assert arena.add(a) is ref_a  # identity-deduplicated
    assert arena.n_arrays == 2
    name = arena.materialize()
    try:
        shm = _attach(name)
        try:
            view_a = np.ndarray(
                ref_a.shape, dtype=np.dtype(ref_a.dtype),
                buffer=shm.buf, offset=ref_a.offset,
            )
            view_b = np.ndarray(
                ref_b.shape, dtype=np.dtype(ref_b.dtype),
                buffer=shm.buf, offset=ref_b.offset,
            )
            assert np.array_equal(view_a, a)
            assert np.array_equal(view_b, b)
        finally:
            shm.close()
    finally:
        arena.release()


class _FakeRecord:
    def __init__(self, factors):
        self.factors = factors


def test_pack_resolve_payload_roundtrip():
    w = np.arange(5.0)
    t = np.arange(3.0)
    record = _FakeRecord({"main": [("mod", w, t)]})
    arena = _InputArena()
    payload = _pack_payload((record, [record], "tag"), arena, {})
    packed = payload[0].factors["main"][0]
    assert isinstance(packed[1], SharedArrayRef)
    assert isinstance(packed[2], SharedArrayRef)
    # Identity-dedup: the record appears twice but was packed once.
    assert payload[1][0] is payload[0]
    assert arena.n_arrays == 2
    name = arena.materialize()
    try:
        shm = _attach(name)
        try:
            resolved = _resolve_payload(payload, shm, {})
            _, rw, rt = resolved[0].factors["main"][0]
            assert np.array_equal(rw, w)
            assert np.array_equal(rt, t)
            assert not rw.flags.writeable
        finally:
            shm.close()
    finally:
        arena.release()


def test_shared_render_bit_identical_to_serial(campaign, psa):
    scenario = scenario_by_name("baseline")
    unique = [campaign.record(scenario, index) for index in range(3)]
    records = [unique[index % 3] for index in range(24)]
    indices = list(range(24))
    serial = psa.engine.render(
        psa.coupling, records, trace_indices=indices, receiver_indices=[10, 5]
    )
    backend = SharedMemoryBackend(2)
    engine = MeasurementEngine(
        psa.config, amplifier=psa.amplifier, backend=backend
    )
    try:
        shared = engine.render(
            psa.coupling,
            records,
            trace_indices=indices,
            receiver_indices=[10, 5],
        )
        assert np.array_equal(serial.samples, shared.samples)
        assert shared.samples.flags.writeable
    finally:
        backend.close()


def test_map_concat_single_payload_runs_inline():
    backend = SharedMemoryBackend(2)
    try:
        out = backend.map_concat(
            lambda payload: np.full((1, 2, 3), float(payload)),
            [7],
            (1, 2, 3),
            [0, 2],
        )
        assert np.array_equal(out, np.full((1, 2, 3), 7.0))
    finally:
        backend.close()


def test_map_concat_split_mismatch_rejected():
    backend = SharedMemoryBackend(2)
    try:
        with pytest.raises(ValueError):
            backend.map_concat(lambda p: p, [1, 2], (1, 4, 3), [0, 4])
    finally:
        backend.close()
