"""Figure 4: frequency response per sensor and Trojan scenario.

The paper shows, for each Trojan, the 5-trace-averaged sensor-10
spectrum with the Trojan active (red) overlaid on the inactive case
(blue): prominent sideband components appear at 48 MHz / 84 MHz.  The
same comparison at sensor 0 (Figure 4e) shows "hardly any spectrum
difference" — the spatial-resolution claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.analysis.spectral import (
    find_prominent_components,
    sideband_feature_db,
)
from ..dsp.transforms import Spectrum, average_spectra
from ..instruments.spectrum_analyzer import SpectrumAnalyzer
from ..workloads.scenarios import reference_for, scenario_by_name
from .context import ExperimentContext, default_context
from .reporting import format_table

#: The scenarios of Figure 4a-4d.
FIG4_TROJANS = ("T1", "T2", "T3", "T4")


@dataclass(frozen=True)
class Fig4Panel:
    """One sub-figure: a sensor's active/inactive spectra."""

    trojan: str
    sensor: int
    active: Spectrum
    inactive: Spectrum
    prominent: List[Tuple[float, float]]
    sideband_delta_db: float


@dataclass(frozen=True)
class Fig4Result:
    """All five panels of Figure 4.

    Attributes
    ----------
    sensor10:
        Panels (a)-(d): sensor 10 under T1..T4.
    sensor0:
        Panel (e): sensor 0 under T1 (the null case).
    """

    sensor10: Dict[str, Fig4Panel]
    sensor0: Fig4Panel


def _panel(
    ctx: ExperimentContext,
    analyzer: SpectrumAnalyzer,
    trojan: str,
    sensor: int,
    n_traces: int,
) -> Fig4Panel:
    scenario = scenario_by_name(trojan)
    reference = reference_for(trojan)
    base_records = [ctx.campaign.record(reference, i) for i in range(n_traces)]
    act_records = [
        ctx.campaign.record(scenario, 500 + i) for i in range(n_traces)
    ]
    inactive = average_spectra(
        [
            analyzer.spectrum(ctx.psa.measure(r, sensor, i))
            for i, r in enumerate(base_records)
        ]
    )
    active = average_spectra(
        [
            analyzer.spectrum(ctx.psa.measure(r, sensor, 500 + i))
            for i, r in enumerate(act_records)
        ]
    )
    delta = sideband_feature_db(active, ctx.config) - sideband_feature_db(
        inactive, ctx.config
    )
    return Fig4Panel(
        trojan=trojan,
        sensor=sensor,
        active=active,
        inactive=inactive,
        prominent=find_prominent_components(active, inactive, ctx.config),
        sideband_delta_db=float(delta),
    )


def run_fig4(
    ctx: Optional[ExperimentContext] = None, n_traces: int = 5
) -> Fig4Result:
    """Regenerate all five Figure 4 panels (5-trace averages)."""
    ctx = ctx or default_context()
    analyzer = SpectrumAnalyzer()
    sensor10 = {
        trojan: _panel(ctx, analyzer, trojan, 10, n_traces)
        for trojan in FIG4_TROJANS
    }
    sensor0 = _panel(ctx, analyzer, "T1", 0, n_traces)
    return Fig4Result(sensor10=sensor10, sensor0=sensor0)


def format_fig4(result: Fig4Result) -> str:
    """Render the Figure 4 summary rows."""
    rows = []
    for trojan, panel in result.sensor10.items():
        prominent = ", ".join(
            f"{freq/1e6:.1f} MHz (+{delta:.1f} dB)"
            for freq, delta in panel.prominent
        )
        rows.append(
            (f"{trojan} @ sensor 10", f"{panel.sideband_delta_db:+.1f}", prominent)
        )
    rows.append(
        (
            "T1 @ sensor 0",
            f"{result.sensor0.sideband_delta_db:+.1f}",
            "(null case — no prominent components expected)",
        )
    )
    header = "Figure 4 — Trojan-active vs inactive spectra\n"
    return header + format_table(
        ["panel", "sideband delta [dB]", "prominent components"], rows
    )
