"""The comparison methods of Table I, implemented end to end.

* :class:`ExternalProbeMethod` — external-probe statistical analysis
  (He et al., TVLSI'17 [7] / Faezi et al. [8]): Langer LF1 traces,
  Euclidean-distance statistics, no localization, not run-time.
* :class:`SingleCoilMethod` — the on-chip single winding of He et al.
  (DAC'20 [1]): run-time capable but self-cancellation-limited.
* :class:`BackscatterMethod` — Nguyen et al. (HOST'20 [9]): injected
  carrier, reflection spectra, PCA + K-means clustering; high detection
  rate, ~100 measurements, no localization.
* :class:`PsaMethod` — the proposed PSA with the sideband feature.
"""

from .protocol import MethodReport, TrojanOutcome
from .common import ReceiverBench
from .external_probe import ExternalProbeMethod
from .single_coil import SingleCoilMethod
from .backscatter import BackscatterMethod
from .psa_method import PsaMethod

__all__ = [
    "MethodReport",
    "TrojanOutcome",
    "ReceiverBench",
    "ExternalProbeMethod",
    "SingleCoilMethod",
    "BackscatterMethod",
    "PsaMethod",
]
