"""Content keys: canonical fingerprints of simulation provenance.

Every artifact the store holds is fully determined by simulation
inputs — the chip (key, config, floorplan), the measurement front-end
(PSA geometry, amplifier, analyzer, ADC) and the workload identity
(scenario name, trace index).  A *fingerprint* is a JSON-able,
deterministic description of one of those inputs; hashing the
canonical JSON of the assembled key material gives the content
address.

Floats are encoded via :meth:`float.hex` so the key material is exact
(no repr rounding, no locale surprises) and stable across platforms
and interpreter runs.  Execution-only engine parameters
(``engine_backend``/``engine_workers``, worker counts, chunk sizes)
are deliberately **excluded**: the engine's determinism contract pins
rendered output bit-for-bit across backends and shardings, so a store
entry is valid no matter how it was executed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Sequence

import numpy as np

from .._version import __version__
from ..chip.testchip import TestChip
from ..config import SimConfig
from ..errors import StoreError
from ..instruments.adc import AdcSpec
from ..instruments.spectrum_analyzer import SpectrumAnalyzer

#: Bump when the key material layout changes (invalidates every entry).
KEY_SCHEMA = 1

#: Library version folded into every content address.  Artifacts are
#: only as reproducible as the code that computed them, so a release
#: that changes rendered values must not warm-start from an older
#: release's cache: bumping the package version (or, for a
#: mid-development simulator change, ``KEY_SCHEMA``) retires every
#: prior entry.
CODE_VERSION = __version__


def _float(value: float) -> str:
    """Exact, platform-stable encoding of one float."""
    return float(value).hex()


def canonical(obj):
    """Normalize key material into a deterministic JSON-able structure.

    Floats become exact hex strings, numpy scalars/arrays become
    nested lists of those, tuples become lists, dict keys are emitted
    in sorted order by :func:`digest`.  Anything else must already be
    JSON-serializable.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (str, int)):
        return obj
    if isinstance(obj, float):
        return _float(obj)
    if isinstance(obj, (np.floating,)):
        return _float(float(obj))
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, np.ndarray):
        return [canonical(item) for item in obj.tolist()]
    if isinstance(obj, bytes):
        return obj.hex()
    if isinstance(obj, (list, tuple)):
        return [canonical(item) for item in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise StoreError(
                    f"key material dict keys must be strings, got {key!r}"
                )
            out[key] = canonical(value)
        return out
    raise StoreError(f"cannot canonicalize key material of type {type(obj)}")


def digest(material) -> str:
    """SHA-256 hex digest of canonicalized key material."""
    payload = json.dumps(
        canonical(material), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# -- fingerprints of the simulation inputs ----------------------------------


def config_fingerprint(config: SimConfig) -> Dict[str, object]:
    """Key material of a :class:`~repro.config.SimConfig`.

    Covers every field that changes rendered values; the execution
    backend selection is excluded by the engine's determinism
    contract (backends are bit-for-bit interchangeable).
    """
    return {
        "f_clock": config.f_clock,
        "oversample": config.oversample,
        "n_cycles": config.n_cycles,
        "block_cycles": config.block_cycles,
        "vdd": config.vdd,
        "temperature_c": config.temperature_c,
        "seed": config.seed,
    }


def floorplan_fingerprint(floorplan) -> Dict[str, object]:
    """Key material of a floorplan: grid plus every module placement."""
    return {
        "die_size": floorplan.die_size,
        "n_regions_side": floorplan.n_regions_side,
        "placements": {
            module: [
                [rect.x0, rect.y0, rect.x1, rect.y1]
                for rect in rects
            ]
            for module, rects in sorted(floorplan.placements.items())
        },
    }


def chip_fingerprint(chip: TestChip) -> Dict[str, object]:
    """Key material of a test chip: AES key, config and floorplan."""
    return {
        "key": chip.key,
        "config": config_fingerprint(chip.config),
        "floorplan": floorplan_fingerprint(chip.floorplan),
    }


def _receiver_fingerprint(receiver) -> Dict[str, object]:
    return {
        "z": receiver.z,
        "r_series": receiver.r_series,
        "inductance": receiver.inductance,
        "ambient_gain": receiver.ambient_gain,
        "gain_jitter": receiver.gain_jitter,
        "turns": [
            [turn.x0, turn.y0, turn.x1, turn.y1] for turn in receiver.turns
        ],
    }


def amplifier_fingerprint(amplifier) -> Dict[str, object]:
    """Key material of the measurement front-end amplifier."""
    return {
        "gain_db": amplifier.gain_db,
        "f_highpass": amplifier.f_highpass,
        "f_lowpass": amplifier.f_lowpass,
        "input_noise_density": amplifier.input_noise_density,
        "input_impedance": amplifier.input_impedance,
    }


def psa_fingerprint(psa) -> Dict[str, object]:
    """Key material of a sensor array's rendering chain.

    Receiver geometry (turn rectangles, height, electrical
    parameters), the coupling calibration and the amplifier — i.e.
    everything between an activity record and a voltage trace that is
    not already covered by the chip fingerprint.
    """
    return {
        "n_sensors": psa.n_sensors,
        "points_per_side": psa.points_per_side,
        "coupling_scale": psa.coupling_scale,
        "receivers": [
            _receiver_fingerprint(receiver)
            for receiver in psa.coupling.receivers
        ],
        "amplifier": amplifier_fingerprint(psa.amplifier),
    }


def campaign_fingerprint(campaign) -> Dict[str, object]:
    """Key material of a measurement campaign (chip + PSA)."""
    return {
        "chip": chip_fingerprint(campaign.chip),
        "psa": psa_fingerprint(campaign.psa),
    }


def analyzer_fingerprint(analyzer: SpectrumAnalyzer) -> Dict[str, object]:
    """Key material of the spectrum-analyzer display settings."""
    return {
        "f_lo": analyzer.f_lo,
        "f_hi": analyzer.f_hi,
        "n_points": analyzer.n_points,
    }


def adc_fingerprint(adc: AdcSpec) -> Dict[str, object]:
    """Key material of an ADC front-end."""
    return {"n_bits": adc.n_bits, "full_scale": adc.full_scale}


def sensors_fingerprint(sensors: Sequence[int]) -> list:
    """Key material of a monitored-sensor selection."""
    return [int(sensor) for sensor in sensors]
