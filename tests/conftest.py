"""Shared fixtures.

The chip + PSA assembly (coupling matrices in particular) is expensive,
so integration-level tests share one session-scoped context and a small
cache of activity records / traces.
"""

from __future__ import annotations

import pytest

from repro.chip.testchip import TestChip
from repro.config import SimConfig
from repro.core.array import ProgrammableSensorArray
from repro.workloads.campaign import MeasurementCampaign
from repro.workloads.scenarios import scenario_by_name

#: Key used by every test chip.
TEST_KEY = bytes(range(16))


@pytest.fixture(scope="session")
def config() -> SimConfig:
    """The paper's default simulation configuration."""
    return SimConfig()


@pytest.fixture(scope="session")
def chip(config: SimConfig) -> TestChip:
    """One shared test chip."""
    return TestChip(TEST_KEY, config)


@pytest.fixture(scope="session")
def psa(chip: TestChip) -> ProgrammableSensorArray:
    """One shared sensor array (coupling matrix built once)."""
    return ProgrammableSensorArray(chip)


@pytest.fixture(scope="session")
def campaign(chip: TestChip, psa: ProgrammableSensorArray) -> MeasurementCampaign:
    """One shared campaign driver."""
    return MeasurementCampaign(chip, psa)


@pytest.fixture(scope="session")
def records(campaign: MeasurementCampaign):
    """Pre-simulated activity records for the common scenarios."""
    cache = {}
    for name in ("idle", "baseline", "T1", "T2", "T3", "T4", "T2_ref"):
        scenario = scenario_by_name(name)
        cache[name] = [campaign.record(scenario, 500 + i) for i in range(2)]
    return cache


@pytest.fixture(scope="session")
def sensor10_traces(psa, records):
    """Sensor-10 traces per scenario (index 0 record)."""
    return {
        name: psa.measure(recs[0], 10, trace_index=900)
        for name, recs in records.items()
    }
