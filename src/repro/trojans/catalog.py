"""Trust-Hub-style catalog of the four test-chip Trojans."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import WorkloadError
from .always_on import (
    ALWAYS_ON_CELLS,
    T1AContinuousCarrier,
    T2AContinuousLeaker,
    TPParametricDrift,
)
from .base import Trojan
from .t1_am_carrier import T1AmCarrier
from .t2_leakage import T2KeyLeakInverters
from .t3_cdma import T3CdmaLeaker
from .t4_dos import T4DosHeater


@dataclass(frozen=True)
class TrojanInfo:
    """Catalog entry describing one Trojan.

    Attributes
    ----------
    name:
        T1..T4.
    trust_hub_family:
        The Trust-Hub benchmark family the paper's design is modified
        from.
    description:
        Payload summary.
    trigger:
        Trigger condition summary.
    always_on:
        True when the silicon payload runs whenever enabled (T3, T4).
    n_cells:
        Standard-cell count (Table II).
    """

    name: str
    trust_hub_family: str
    description: str
    trigger: str
    always_on: bool
    n_cells: int


#: The catalog, in paper order.
TROJAN_CATALOG: Dict[str, TrojanInfo] = {
    "T1": TrojanInfo(
        name="T1",
        trust_hub_family="AES-T1800 (RF leak)",
        description="Amplitude-modulation radio carrier emitting at 750 kHz",
        trigger="21-bit counter reaches 21'h1FFFFF (period ~63.6 ms @ 33 MHz)",
        always_on=False,
        n_cells=1881,
    ),
    "T2": TrojanInfo(
        name="T2",
        trust_hub_family="AES-T1600 (leakage amplifier)",
        description="Inverter chain on a key wire amplifying leakage current",
        trigger="first two plaintext bytes equal 0xAAAA",
        always_on=False,
        n_cells=2132,
    ),
    "T3": TrojanInfo(
        name="T3",
        trust_hub_family="AES-T700 (CDMA leak)",
        description="CDMA channel leaking key bits over a PN code",
        trigger="always-on (external enable in experiments)",
        always_on=True,
        n_cells=329,
    ),
    "T4": TrojanInfo(
        name="T4",
        trust_hub_family="AES-T1400 (DoS)",
        description="Ring-oscillator heater elevating power consumption",
        trigger="always-on (external enable in experiments)",
        always_on=True,
        n_cells=2181,
    ),
}

#: The always-on variant family (see :mod:`repro.trojans.always_on`).
#: Deliberately separate from :data:`TROJAN_CATALOG`: the fabricated
#: test chip carries exactly T1..T4, and Table II / the netlist
#: inventory account only for those.
VARIANT_CATALOG: Dict[str, TrojanInfo] = {
    "T1A": TrojanInfo(
        name="T1A",
        trust_hub_family="AES-T1800 variant (trigger deleted)",
        description="T1's 750 kHz AM carrier running continuously",
        trigger="none — active from power-on",
        always_on=True,
        n_cells=ALWAYS_ON_CELLS["T1A"],
    ),
    "T2A": TrojanInfo(
        name="T2A",
        trust_hub_family="AES-T1600 variant (trigger deleted)",
        description="key-wire inverter chain leaking on every block",
        trigger="none — active from power-on",
        always_on=True,
        n_cells=ALWAYS_ON_CELLS["T2A"],
    ),
    "TP": TrojanInfo(
        name="TP",
        trust_hub_family="parametric (dopant-level, no added logic)",
        description=(
            "skewed-implant buffer bank whose leakage ramps with "
            "junction temperature over each window"
        ),
        trigger="none — parametric, conducts from power-on",
        always_on=True,
        n_cells=ALWAYS_ON_CELLS["TP"],
    ),
}

_FACTORIES: Dict[str, Callable[..., Trojan]] = {
    "T1": T1AmCarrier,
    "T2": T2KeyLeakInverters,
    "T3": T3CdmaLeaker,
    "T4": T4DosHeater,
    "T1A": T1AContinuousCarrier,
    "T2A": T2AContinuousLeaker,
    "TP": TPParametricDrift,
}


def make_trojan(name: str, **kwargs) -> Trojan:
    """Instantiate a Trojan by catalog or variant-catalog name."""
    if name not in _FACTORIES:
        raise WorkloadError(
            f"unknown Trojan {name!r}; expected one of {sorted(_FACTORIES)}"
        )
    return _FACTORIES[name](**kwargs)


def standard_trojans(key: bytes = b"\x00" * 16) -> List[Trojan]:
    """All four Trojans in their as-fabricated (inactive) state.

    T1's counter starts at zero (it will not fire inside a short
    trace); T2 is armed but sees no matching plaintext unless the
    workload supplies it; T3/T4 external enables are off.
    """
    return [
        T1AmCarrier(enabled=True, start_count=0),
        T2KeyLeakInverters(enabled=True),
        T3CdmaLeaker(enabled=False, key=key),
        T4DosHeater(enabled=False),
    ]
