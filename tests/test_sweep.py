"""Sweep orchestration and the vectorized Welford detector core."""

import json

import numpy as np
import pytest

from repro.core.analysis.detector import DetectorConfig, RuntimeDetector
from repro.core.analysis.welford import DetectorBank, RollingMoments
from repro.errors import AnalysisError
from repro.sweep import (
    DetectionSweep,
    SweepCell,
    SweepGrid,
    build_grid,
    mttd_grid,
    table1_grid,
)


def _step_streams(rng, n_streams, n_base, n_active, step=25.0):
    base = rng.normal(-40.0, 0.4, (n_streams, n_base))
    active = rng.normal(-40.0 + step, 0.4, (n_streams, n_active))
    return np.concatenate([base, active], axis=1)


# -- rolling Welford moments ---------------------------------------------------


def test_rolling_moments_match_numpy_window():
    rng = np.random.default_rng(3)
    values = rng.normal(5.0, 2.0, 300)
    window = 16
    moments = RollingMoments(1, window)
    for index, value in enumerate(values):
        moments.push(np.array([value]), np.array([True]))
        tail = values[max(0, index - window + 1) : index + 1]
        assert moments.count[0] == tail.size
        assert moments.mean[0] == pytest.approx(tail.mean(), abs=1e-10)
        if tail.size > 1:
            assert moments.std()[0] == pytest.approx(
                tail.std(ddof=1), abs=1e-10
            )


def test_rolling_moments_masked_push():
    moments = RollingMoments(2, 8)
    for value in (1.0, 2.0, 3.0):
        moments.push(
            np.array([value, value]), np.array([True, False])
        )
    assert moments.count[0] == 3 and moments.count[1] == 0
    assert moments.mean[0] == pytest.approx(2.0)


# -- bank vs sequential detector -----------------------------------------------


def test_bank_bit_identical_to_sequential_fold():
    """The vectorized Welford bank IS the RuntimeDetector, stream-wise."""
    rng = np.random.default_rng(11)
    config = DetectorConfig(warmup=6, baseline_window=12)
    features = np.vstack(
        [
            _step_streams(rng, 1, 14, 8, step=30.0)[0],
            _step_streams(rng, 1, 14, 8, step=0.0)[0],  # silent stream
            _step_streams(rng, 1, 14, 8, step=-30.0)[0],  # energy drop
        ]
    )
    bank = DetectorBank(features.shape[0], config)
    timeline = bank.process(features)
    for stream in range(features.shape[0]):
        detector = RuntimeDetector(config)
        for index, feature in enumerate(features[stream]):
            decision = detector.update(float(feature))
            bank_z = timeline.z[stream, index]
            assert decision.armed == timeline.armed[stream, index]
            assert decision.alarm == timeline.alarms[stream, index]
            if np.isnan(decision.z):
                assert np.isnan(bank_z)
            else:
                assert decision.z == bank_z  # bit-identical


def test_bank_rejects_bad_shapes_and_nonfinite():
    bank = DetectorBank(2, DetectorConfig(warmup=2))
    with pytest.raises(AnalysisError):
        bank.step(np.zeros(3))
    with pytest.raises(AnalysisError):
        bank.step(np.array([0.0, np.nan]))
    with pytest.raises(AnalysisError):
        bank.process(np.zeros((3, 4)))


def test_bank_first_alarm_across_streams():
    rng = np.random.default_rng(5)
    config = DetectorConfig(warmup=4)
    features = np.vstack(
        [
            _step_streams(rng, 1, 10, 4, step=0.0)[0],
            _step_streams(rng, 1, 8, 6, step=40.0)[0],
        ]
    )
    timeline = DetectorBank(2, config).process(features)
    firsts = timeline.first_alarms()
    assert firsts[0] is None
    assert firsts[1] is not None and firsts[1] >= 8
    assert timeline.first_alarm() == firsts[1]


# -- grid definitions ----------------------------------------------------------


def test_cell_auto_reference_and_segments():
    cell = SweepCell(trojan="T2", n_baseline=4, n_active=3, detector=DetectorConfig(warmup=2))
    assert cell.reference == "T2_ref"
    segments = cell.segments
    assert [s.scenario for s in segments] == ["T2_ref", "T2"]
    assert segments[0].indices == [0, 1, 2, 3]
    assert segments[1].indices == [500, 501, 502]
    assert cell.trigger_index == 4


def test_cell_validation():
    with pytest.raises(AnalysisError):
        SweepCell(trojan="T1", sensors=())
    with pytest.raises(AnalysisError):
        SweepCell(trojan="T1", n_baseline=1)
    with pytest.raises(AnalysisError):
        SweepCell(
            trojan="T1",
            n_baseline=2,
            n_active=2,
            detector=DetectorConfig(warmup=8),
        )


def test_named_grids():
    table1 = build_grid("table1")
    assert table1.n_cells == 4
    assert all(not cell.quantize for cell in table1.cells)
    mttd = build_grid("mttd")
    assert all(cell.quantize for cell in mttd.cells)
    bench = build_grid("bench4x4")
    assert bench.n_cells == 16
    assert len({cell.trojan for cell in bench.cells}) == 4
    with pytest.raises(AnalysisError):
        build_grid("nope")


def test_grid_product_shape_and_unique_labels():
    grid = SweepGrid.product(
        "p",
        trojans=("T1", "T3"),
        references=(("baseline", 0), ("idle", 0)),
        sensor_subsets=((10,), (5, 10)),
        detectors=(DetectorConfig(warmup=2), DetectorConfig(warmup=3)),
        n_baseline=4,
        n_active=2,
    )
    assert grid.n_cells == 2 * 2 * 2 * 2
    labels = [cell.label for cell in grid.cells]
    assert len(set(labels)) == grid.n_cells  # every cell addressable
    assert "T1|baseline@0|s10|d0" in labels
    assert "T3|idle@0|s5-10|d1" in labels


def test_grid_rejects_duplicate_labels():
    cell = SweepCell(trojan="T1", detector=DetectorConfig(warmup=2))
    with pytest.raises(AnalysisError):
        SweepGrid(name="dup", cells=(cell, cell))


# -- orchestrator (rendered end-to-end on the shared fixtures) -----------------


@pytest.fixture(scope="module")
def sweep_report(campaign):
    grid = SweepGrid(
        name="unit",
        cells=(
            SweepCell(
                trojan="T1",
                detector=DetectorConfig(warmup=4),
                n_baseline=6,
                n_active=3,
            ),
        ),
    )
    return DetectionSweep(campaign).run(grid)


def test_sweep_detects_t1(sweep_report):
    cell = sweep_report.cells[0]
    assert cell.mttd.detected and not cell.mttd.false_alarm
    assert cell.alarm_index is not None and cell.alarm_index >= 6
    assert cell.within_budget
    best = cell.best
    assert best.roc_auc == 1.0
    assert best.detection_rate == 1.0
    assert best.n_required < 10
    assert cell.features_db.shape == (1, 9)


def test_sweep_report_rendering(sweep_report):
    text = sweep_report.format()
    assert "T1|baseline@0" in text
    assert "ROC-AUC" in text
    payload = json.loads(sweep_report.to_json())
    assert payload["grid"] == "unit"
    assert payload["cells"][0]["within_budget"] is True
    assert payload["cells"][0]["outcomes"][0]["sensor"] == 10
    assert sweep_report.cell("T1|baseline@0") is sweep_report.cells[0]
    with pytest.raises(AnalysisError):
        sweep_report.cell("missing")


def test_record_cache_shared_across_cells(campaign):
    """Cells sharing a baseline span re-use simulated records."""
    grid = SweepGrid(
        name="cache",
        cells=tuple(
            SweepCell(
                trojan=trojan,
                detector=DetectorConfig(warmup=4),
                n_baseline=6,
                n_active=2,
            )
            for trojan in ("T1", "T4")
        ),
        keep_features=False,
    )
    sweep = DetectionSweep(campaign)
    sweep.run(grid)
    keys = set(sweep._record_cache)
    # 6 shared baseline records + 2 active records per Trojan.
    assert len(keys) == 6 + 4
    assert ("baseline", 0) in keys and ("T1", 500) in keys


def test_preset_grids_match_experiment_protocol():
    mttd = mttd_grid(n_baseline=7, n_active=4)
    assert all(cell.n_baseline == 7 and cell.n_active == 4 for cell in mttd.cells)
    assert all(cell.detector.warmup == 5 for cell in mttd.cells)
    table1 = table1_grid(n_traces=6)
    assert all(
        cell.active_offset == 700 and cell.n_baseline == 6
        for cell in table1.cells
    )
