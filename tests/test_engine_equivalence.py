"""Numerical equivalence of the batched engine and the legacy APIs.

The engine's determinism contract: a capture is identified by
(scenario, receiver, trace index) and renders bit-for-bit identically
whether produced alone, inside any batch, through the compatibility
wrappers, or on any execution backend.
"""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.array import ProgrammableSensorArray
from repro.core.sensors import quadrant_coil
from repro.em.coupling import CouplingMatrix, emf_rfft, emf_waveforms
from repro.em.noise import white_noise_spectrum
from repro.engine import (
    MeasurementEngine,
    ProcessBackend,
    SerialBackend,
    TraceBatch,
    coupling_cache_stats,
)
from repro.rng import stream

ALL_SCENARIOS = ("idle", "baseline", "T1", "T2", "T3", "T4")


# -- batched vs. per-trace wrappers -----------------------------------------


@pytest.mark.parametrize("scenario", ALL_SCENARIOS)
def test_batch_matches_measure_all(psa, records, scenario):
    """One batched render == per-record measure_all, every sensor."""
    recs = records[scenario]
    batch = psa.render(recs, trace_indices=[500, 501])
    for t, record in enumerate(recs):
        legacy = psa.measure_all(record, trace_index=500 + t)
        for sensor in range(16):
            assert np.array_equal(
                batch.samples[sensor, t], legacy[sensor].samples
            ), f"{scenario} sensor {sensor} trace {t}"


def test_single_sensor_render_matches_full(psa, records):
    """Rendering a sensor subset equals the same rows of a full render."""
    record = records["T2"][0]
    full = psa.render([record], trace_indices=[42])
    subset = psa.render([record], trace_indices=[42], sensors=[10, 3])
    assert np.array_equal(subset.samples[0], full.samples[10])
    assert np.array_equal(subset.samples[1], full.samples[3])
    assert subset.labels == ("psa_sensor_10", "psa_sensor_3")


def test_measure_matches_batch_row(psa, records):
    record = records["T3"][1]
    trace = psa.measure(record, 7, trace_index=13)
    batch = psa.render([record], trace_indices=[13])
    assert np.array_equal(trace.samples, batch.samples[7, 0])


def test_measure_coil_matches_batch(psa, records):
    coil = quadrant_coil(10, "ne")
    single = psa.measure_coil(coil, records["T1"][0], trace_index=5)
    batch = psa.measure_coil_batch(
        coil, records["T1"], trace_indices=[5, 6]
    )
    assert np.array_equal(single.samples, batch.samples[0, 0])


def test_campaign_collect_matches_collect_batch(campaign):
    trace_set = campaign.collect("T4", 2, sensors=[10, 0])
    batch = campaign.collect_batch("T4", 2, sensors=[10, 0])
    for position, sensor in enumerate((10, 0)):
        for index in range(2):
            assert np.array_equal(
                trace_set.sensor(sensor)[index].samples,
                batch.samples[position, index],
            )


def test_shared_record_reuses_emf_with_fresh_noise(psa, records):
    """One record over many indices: same signal, independent noise."""
    record = records["baseline"][0]
    batch = psa.render([record], trace_indices=[0, 1, 2])
    assert batch.n_traces == 3
    assert not np.array_equal(batch.samples[10, 0], batch.samples[10, 1])
    again = psa.measure(record, 10, trace_index=2)
    assert np.array_equal(again.samples, batch.samples[10, 2])


def test_trace_metadata_parity(psa, records):
    batch = psa.render([records["T1"][0]], trace_indices=[7])
    trace = batch.trace(5, 0)
    assert trace.label == "psa_sensor_5"
    assert trace.scenario == "T1"
    assert trace.meta["trace_index"] == 7
    assert trace.meta["turns"] == 5
    assert trace.meta["r_series"] > 100.0


# -- backends ----------------------------------------------------------------


def test_process_backend_matches_serial(chip, psa, records):
    """The process backend shards across >= 2 workers bit-for-bit."""
    engine = MeasurementEngine(
        chip.config, amplifier=psa.amplifier, backend=ProcessBackend(2)
    )
    recs = [records["T1"][0], records["baseline"][0]] * 3
    indices = list(range(6))
    parallel = engine.render(psa.coupling, recs, trace_indices=indices)
    serial = psa.engine.render(psa.coupling, recs, trace_indices=indices)
    assert isinstance(psa.engine.backend, SerialBackend)
    assert np.array_equal(parallel.samples, serial.samples)


def test_backend_selection_from_config():
    config = SimConfig(engine_backend="process", engine_workers=3)
    engine = MeasurementEngine(config)
    assert isinstance(engine.backend, ProcessBackend)
    assert engine.backend.max_workers == 3
    with pytest.raises(Exception):
        SimConfig(engine_backend="threads")


def test_chunking_does_not_change_output(chip, psa, records):
    small_chunks = MeasurementEngine(
        chip.config, amplifier=psa.amplifier, chunk_traces=2
    )
    recs = records["T2"] * 3
    a = small_chunks.render(psa.coupling, recs, trace_indices=range(6))
    b = psa.engine.render(psa.coupling, recs, trace_indices=range(6))
    assert np.array_equal(a.samples, b.samples)


# -- coupling-geometry cache -------------------------------------------------


def test_coupling_cache_hits_for_identical_geometry(chip):
    before = coupling_cache_stats()
    second = ProgrammableSensorArray(chip)
    after = coupling_cache_stats()
    assert after["hits"] >= before["hits"] + 1
    assert after["misses"] == before["misses"]
    # The cached geometry arrays are shared, not recomputed.
    first = ProgrammableSensorArray(chip)
    assert second.coupling.matrix is first.coupling.matrix
    assert second.coupling.bond_row is first.coupling.bond_row


def test_coupling_cache_misses_on_different_geometry(chip, psa):
    before = coupling_cache_stats()["misses"]
    CouplingMatrix(
        chip.floorplan,
        psa.coupling.receivers,
        points_per_side=24,
        scale=psa.coupling_scale,
    )
    assert coupling_cache_stats()["misses"] == before + 1


# -- spectral building blocks ------------------------------------------------


def test_emf_rfft_matches_time_domain(psa, records):
    """The spectral EMF equals the linear-convolution reference away
    from the (deliberate) one-kernel circular wrap at the trace head."""
    record = records["T4"][0]
    config = record.config
    spectral = np.fft.irfft(
        emf_rfft(psa.coupling, record), n=config.n_samples, axis=-1
    )
    reference = emf_waveforms(psa.coupling, record)
    scale = np.abs(reference).max()
    wrap = 2 * config.oversample
    assert (
        np.abs(spectral[:, wrap:] - reference[:, wrap:]).max() < 1e-9 * scale
    )


def test_white_noise_spectrum_is_white_gaussian():
    n, rms = 4096, 2.5e-3
    rng = stream(1234, "whiteness")
    realizations = np.empty((64, n))
    for index in range(64):
        spec = white_noise_spectrum(rng, n, rms)
        realizations[index] = np.fft.irfft(spec, n=n)
    measured = realizations.std()
    assert measured == pytest.approx(rms, rel=0.02)
    # Spectrally flat: band powers agree within sampling tolerance.
    power = np.abs(np.fft.rfft(realizations, axis=-1)) ** 2
    body = power[:, 1:-1]
    usable = body.shape[1] - body.shape[1] % 4
    bands = body[:, :usable].reshape(64, 4, -1).mean(axis=(0, 2))
    assert bands.max() / bands.min() < 1.1


def test_batch_concatenate_roundtrip(psa, records):
    a = psa.render(records["T1"], trace_indices=[0, 1])
    b = psa.render(records["T1"], trace_indices=[2, 3])
    joined = TraceBatch.concatenate([a, b])
    assert joined.n_traces == 4
    assert joined.trace_indices == (0, 1, 2, 3)
    assert np.array_equal(joined.samples[:, :2], a.samples)
    assert np.array_equal(joined.samples[:, 2:], b.samples)
