"""Experiment harness smoke tests (light parameterizations)."""

import pytest

from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def ctx(config, chip, psa, campaign):
    return ExperimentContext(
        config=config, chip=chip, psa=psa, campaign=campaign
    )


def test_snr_experiment(ctx):
    from repro.experiments.snr import format_snr, run_snr

    result = run_snr(ctx, n_traces=1)
    for name, paper in result.paper_db.items():
        assert abs(result.measured_db[name] - paper) < 6.0, name
    text = format_snr(result)
    assert "psa" in text and "41.0" in text


def test_table2_experiment(ctx):
    from repro.experiments.table2 import format_table2, run_table2

    rows = run_table2()
    assert rows[0].n_cells == 28806
    text = format_table2(rows)
    assert "T3" in text and "329" in text


def test_fig3_experiment(ctx):
    from repro.experiments.fig3 import format_fig3, run_fig3

    result = run_fig3(ctx, n_traces=1)
    assert result.max_difference_db > 30.0
    assert "max difference" in format_fig3(result)


def test_fig5_experiment(ctx):
    from repro.experiments.fig5 import format_fig5, run_fig5

    result = run_fig5(ctx)
    assert result.identification_accuracy == 1.0
    text = format_fig5(result)
    assert "identified as" in text


def test_cost_experiment(ctx):
    from repro.experiments.cost import format_cost, run_cost

    cost = run_cost()
    text = format_cost(cost)
    assert "34" in text and "ohm" in text


def test_robustness_experiment(ctx):
    from repro.experiments.robustness import format_robustness, run_robustness

    result = run_robustness(ctx, n_voltage=3, n_temperature=4)
    assert result.voltage.span_db < 6.0
    assert result.temperature.span_db < 6.0
    assert result.chirp.relative_span < 0.6
    assert "T-gate" in format_robustness(result)


def test_mttd_experiment(ctx):
    from repro.experiments.mttd import format_mttd, run_mttd

    result = run_mttd(ctx, n_baseline=7, n_active=3)
    assert result.all_within_budget
    assert "MTTD" in format_mttd(result)


def test_duty_ablation():
    from repro.experiments.ablations import run_duty_sweep

    result = run_duty_sweep()
    assert result.min_ratio_duty == pytest.approx(0.5, abs=0.06)


def test_reporting_helpers():
    from repro.experiments.reporting import (
        format_series,
        format_table,
        sparkline,
    )

    table = format_table(["a", "b"], [(1, 2.5), ("x", "y")])
    assert "a" in table and "2.50" in table
    series = format_series([1.0, 2.0], [3.0, 4.0], "x", "y")
    assert "3.00" in series
    assert len(sparkline([0, 1, 2, 3], width=4)) == 4
    assert sparkline([]) == ""
