"""Cold vs warm store runs are bit-identical — the store's acceptance pin.

Three consumer flows run twice against one artifact store: a cold run
(empty store, everything rendered and persisted) and a warm run (a
fresh consumer instance replaying from disk).  Reports must agree
bit-for-bit, and the warm run must actually have hit the store.

Also covers the CLI surface: ``repro store {stats,gc,clear}`` and the
``--no-store``/``--store-dir``/``REPRO_STORE_DIR`` overrides that let
CI smoke jobs pin cold-start timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main as cli_main
from repro.core.analysis.detector import DetectorConfig
from repro.runtime import build_fleet
from repro.store import ArtifactStore
from repro.sweep import DetectionSweep, LocalizationSweep
from repro.sweep.grid import SweepCell, SweepGrid
from repro.sweep.localize import LocalizeCell, LocalizeGrid


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store")


def _tiny_detection_grid() -> SweepGrid:
    detector = DetectorConfig(warmup=4)
    cells = (
        SweepCell(
            trojan="T4",
            n_baseline=5,
            n_active=3,
            sensors=(10,),
            detector=detector,
        ),
        SweepCell(
            trojan="T1",
            n_baseline=5,
            n_active=3,
            sensors=(10, 6),
            detector=detector,
        ),
    )
    return SweepGrid(name="store-check", cells=cells, keep_features=True)


def test_detection_sweep_cold_warm_bit_identical(campaign, store):
    grid = _tiny_detection_grid()
    baseline = DetectionSweep(campaign).run(grid)

    cold_store = ArtifactStore(store.root)
    cold = DetectionSweep(campaign, store=cold_store).run(grid)
    assert cold_store.writes > 0

    warm_store = ArtifactStore(store.root)
    warm = DetectionSweep(campaign, store=warm_store).run(grid)
    assert warm_store.hits > 0
    assert warm_store.misses == 0

    assert cold.to_json() == baseline.to_json()
    assert warm.to_json() == cold.to_json()
    for cold_cell, warm_cell in zip(cold.cells, warm.cells):
        assert np.array_equal(cold_cell.features_db, warm_cell.features_db)


def test_localize_sweep_cold_warm_bit_identical(config, campaign, store):
    grid = LocalizeGrid(
        name="store-check",
        cells=(
            LocalizeCell(
                trojan="T4", n_records=1, refine=False, scan=False
            ),
        ),
    )
    baseline = LocalizationSweep(config, campaign=campaign).run(grid)

    cold_store = ArtifactStore(store.root)
    cold = LocalizationSweep(
        config, campaign=campaign, store=cold_store
    ).run(grid)
    assert cold_store.writes > 0

    warm_store = ArtifactStore(store.root)
    warm = LocalizationSweep(
        config, campaign=campaign, store=warm_store
    ).run(grid)
    assert warm_store.hits > 0
    assert warm_store.misses == 0

    assert cold.to_json() == baseline.to_json()
    assert warm.to_json() == cold.to_json()


def test_monitor_session_cold_warm_bit_identical(config, store):
    def run(session_store):
        report = build_fleet(
            "smoke", n_chips=1, config=config, store=session_store
        ).run()
        return report.chips[0].report

    baseline = run(None)
    cold_store = ArtifactStore(store.root)
    cold = run(cold_store)
    assert cold_store.writes > 0
    warm_store = ArtifactStore(store.root)
    warm = run(warm_store)
    assert warm_store.hits > 0
    assert warm_store.misses == 0

    for reference, candidate in ((baseline, cold), (cold, warm)):
        assert np.array_equal(
            reference.features_db, candidate.features_db
        )
        assert reference.first_alarm == candidate.first_alarm
        assert list(reference.alarms) == list(candidate.alarms)
        if reference.identification is None:
            assert candidate.identification is None
        else:
            assert (
                reference.identification.label
                == candidate.identification.label
            )
        if reference.localization is None:
            assert candidate.localization is None
        else:
            assert reference.localization.position == (
                candidate.localization.position
            )


# -- CLI surface ----------------------------------------------------------------


def test_parser_store_flags():
    args = build_parser().parse_args(["sweep", "--grid", "smoke"])
    assert args.store_dir is None
    assert args.no_store is False
    args = build_parser().parse_args(
        ["monitor", "--no-store", "--store-dir", "/tmp/s"]
    )
    assert args.no_store is True
    assert args.store_dir == "/tmp/s"


def test_store_cli_stats_gc_clear(tmp_path, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "cli-store"))
    assert cli_main(["store", "stats"]) == 0
    out = capsys.readouterr().out
    assert "entries: 0" in out

    store = ArtifactStore(tmp_path / "cli-store")
    store.put("record", "a" * 64, {"x": np.ones(4)}, {})
    assert cli_main(["store", "stats"]) == 0
    assert "entries: 1" in capsys.readouterr().out

    assert cli_main(["store", "gc", "--max-mb", "0"]) == 0
    assert "evicted 1 entries" in capsys.readouterr().out

    store.put("record", "b" * 64, {"x": np.ones(4)}, {})
    assert cli_main(["store", "clear"]) == 0
    assert "removed 1 entries" in capsys.readouterr().out
    assert ArtifactStore(tmp_path / "cli-store").stats().entries == 0


def test_store_cli_rejects_unknown_action():
    with pytest.raises(SystemExit):
        cli_main(["store", "bogus"])


def test_env_var_sets_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "env-store"))
    assert ArtifactStore().root == tmp_path / "env-store"
    # An explicit directory wins over the environment.
    assert (
        ArtifactStore(tmp_path / "explicit").root == tmp_path / "explicit"
    )
