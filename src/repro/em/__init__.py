"""Electromagnetic physics substrate.

Implements the magnetostatics that couple on-chip switching currents
into the PSA coils, external probes and the single-coil baseline:

* **Sources** — each floorplan region's supply current is a *dipole
  pair*: a positive vertical magnetic dipole at the region center and a
  negative one displaced to the nearest power stripe (the return path).
  The pair's far field decays like a quadrupole, and a loop that
  encloses *both* poles links almost zero net flux — the paper's
  "self-cancellation" that penalizes whole-chip single coils — while a
  sensor matched to the Trojan/stripe scale straddles one pole and
  keeps a strong net flux.
* **Receivers** — arbitrary stacks of rectangular turns; flux is
  integrated patch-wise from the dipole fields.
* **Electrical chain** — T-gate/MOSFET on-resistance vs supply and
  temperature, coil impedance, Johnson + ambient noise, and the 50 dB
  band-shaping amplifier.
"""

from .dipole import bz_unit_dipole, flux_through_patches
from .loops import rect_patches, turns_flux_factor
from .coupling import (
    CouplingMatrix,
    Receiver,
    charge_amplitudes,
    coupling_cache_stats,
    emf_rfft,
    emf_waveforms,
)
from .noise import NoiseModel, ambient_rms, johnson_rms
from .devices import (
    TGATE_R_NOMINAL,
    mosfet_on_resistance,
    sensor_impedance,
    tgate_resistance,
)
from .amplifier import MeasurementAmplifier
from .probes import icr_hh100_probe, langer_lf1_probe, single_coil_receiver

__all__ = [
    "bz_unit_dipole",
    "flux_through_patches",
    "rect_patches",
    "turns_flux_factor",
    "CouplingMatrix",
    "Receiver",
    "charge_amplitudes",
    "coupling_cache_stats",
    "emf_rfft",
    "emf_waveforms",
    "NoiseModel",
    "ambient_rms",
    "johnson_rms",
    "TGATE_R_NOMINAL",
    "mosfet_on_resistance",
    "sensor_impedance",
    "tgate_resistance",
    "MeasurementAmplifier",
    "icr_hh100_probe",
    "langer_lf1_probe",
    "single_coil_receiver",
]
