"""AES S-box, derived from first principles.

The S-box is computed (not transcribed): multiplicative inverse in
GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1, followed by the
affine transformation.  Deriving it keeps the implementation honest and
gives the test suite a strong cross-check against the published table.
"""

from __future__ import annotations

import numpy as np

AES_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


def gf_mul(a: int, b: int) -> int:
    """Multiply two GF(2^8) elements modulo the AES polynomial."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_POLY
        b >>= 1
    return result & 0xFF


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inverse of 0 is defined as 0."""
    if a == 0:
        return 0
    # Fermat: a^(254) = a^(-1) in GF(2^8).
    result = 1
    power = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = gf_mul(result, power)
        power = gf_mul(power, power)
        exponent >>= 1
    return result


def _affine(value: int) -> int:
    """The AES affine transformation over GF(2)."""
    result = 0
    for bit in range(8):
        parity = (
            (value >> bit)
            ^ (value >> ((bit + 4) % 8))
            ^ (value >> ((bit + 5) % 8))
            ^ (value >> ((bit + 6) % 8))
            ^ (value >> ((bit + 7) % 8))
            ^ (0x63 >> bit)
        ) & 1
        result |= parity << bit
    return result


def _build_sbox() -> np.ndarray:
    table = np.zeros(256, dtype=np.uint8)
    for value in range(256):
        table[value] = _affine(gf_inverse(value))
    return table


def _invert_table(table: np.ndarray) -> np.ndarray:
    inverse = np.zeros(256, dtype=np.uint8)
    for index in range(256):
        inverse[table[index]] = index
    return inverse


#: Forward S-box as a 256-entry lookup table.
SBOX: np.ndarray = _build_sbox()
SBOX.setflags(write=False)

#: Inverse S-box.
INV_SBOX: np.ndarray = _invert_table(SBOX)
INV_SBOX.setflags(write=False)


def sbox_bytes(data: np.ndarray) -> np.ndarray:
    """Apply the forward S-box element-wise to a uint8 array."""
    return SBOX[np.asarray(data, dtype=np.uint8)]


def inv_sbox_bytes(data: np.ndarray) -> np.ndarray:
    """Apply the inverse S-box element-wise to a uint8 array."""
    return INV_SBOX[np.asarray(data, dtype=np.uint8)]


def xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    return gf_mul(a, 2)


#: Bit-population count per byte value (popcount lookup).
POPCOUNT: np.ndarray = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.int64)
POPCOUNT.setflags(write=False)


def bit_hamming(a: np.ndarray, b: np.ndarray) -> int:
    """Bit-level Hamming distance between two uint8 arrays.

    A table lookup per byte (no bit unpacking), exactly equal to
    ``np.unpackbits(a ^ b).sum()`` — this sits on the activity model's
    hot path (a few per simulated core cycle).
    """
    return int(POPCOUNT[np.bitwise_xor(a, b)].sum())
