"""Instrument models."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.instruments.adc import AdcSpec, quantize
from repro.instruments.oscilloscope import Oscilloscope
from repro.instruments.rasc import RascMonitor
from repro.instruments.signal_gen import chirp
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.traces import Trace

FS = 528e6


def _tone_trace(freq, amp=1.0, n=8448, label="t"):
    t = np.arange(n) / FS
    return Trace(samples=amp * np.sin(2 * np.pi * freq * t), fs=FS, label=label)


def test_adc_lsb_and_clipping():
    spec = AdcSpec(n_bits=8, full_scale=1.0)
    assert spec.lsb == pytest.approx(2.0 / 256)
    out = quantize(np.array([0.0, 2.0, -2.0]), spec)
    assert out[0] == 0.0
    assert out[1] == pytest.approx(1.0 - spec.lsb)
    assert out[2] == -1.0


def test_adc_quantization_error_bounded():
    spec = AdcSpec(n_bits=10, full_scale=1.0)
    rng = np.random.default_rng(0)
    samples = rng.uniform(-0.9, 0.9, 1000)
    error = np.abs(quantize(samples, spec) - samples)
    assert error.max() <= spec.lsb / 2 + 1e-12


def test_adc_validation():
    with pytest.raises(MeasurementError):
        AdcSpec(n_bits=2)
    with pytest.raises(MeasurementError):
        AdcSpec(full_scale=-1.0)


def test_oscilloscope_capture_and_trigger():
    trace = _tone_trace(33e6)
    scope = Oscilloscope(record_length=1024)
    captured = scope.capture(trace, trigger_sample=16)
    assert captured.n_samples == 1024
    assert captured.meta["quantized_bits"] == 10
    with pytest.raises(MeasurementError):
        scope.capture(trace, trigger_sample=10**7)


def test_oscilloscope_autorange():
    trace = _tone_trace(33e6, amp=0.001)
    scope = Oscilloscope().auto_range(trace)
    captured = scope.capture(trace)
    # Auto-ranged capture resolves the small signal.
    assert np.corrcoef(captured.samples, trace.samples)[0, 1] > 0.99


def test_chirp_sweeps_band():
    trace = chirp(1e6, 120e6, duration=16e-6, fs=FS, amplitude=70e-3)
    assert np.abs(trace.samples).max() == pytest.approx(70e-3, rel=0.01)
    spectrum = np.abs(np.fft.rfft(trace.samples))
    freqs = np.fft.rfftfreq(trace.n_samples, 1 / FS)
    band = spectrum[(freqs > 5e6) & (freqs < 110e6)]
    out_of_band = spectrum[freqs > 200e6]
    assert band.mean() > 20 * out_of_band.mean()


def test_chirp_validation():
    with pytest.raises(MeasurementError):
        chirp(10e6, 5e6, 1e-5, FS)
    with pytest.raises(MeasurementError):
        chirp(1e6, 300e6, 1e-5, FS)


def test_spectrum_analyzer_display_settings():
    analyzer = SpectrumAnalyzer()
    spec = analyzer.spectrum(_tone_trace(48e6))
    assert len(spec) == 2000
    assert spec.freqs[-1] == pytest.approx(120e6)


def test_spectrum_analyzer_average():
    analyzer = SpectrumAnalyzer()
    traces = [_tone_trace(48e6) for _ in range(5)]
    avg = analyzer.average_spectrum(traces)
    assert avg.at(48e6) == pytest.approx(1 / np.sqrt(2), rel=0.02)


def test_zero_span_recovers_modulation():
    n = 16896
    t = np.arange(n) / FS
    envelope = 1.0 + 0.5 * np.sin(2 * np.pi * 750e3 * t)
    trace = Trace(
        samples=envelope * np.sin(2 * np.pi * 48e6 * t), fs=FS, label="am"
    )
    analyzer = SpectrumAnalyzer()
    result = analyzer.zero_span(trace, 48e6, rbw=8e6)
    spectrum = np.abs(np.fft.rfft(result.envelope - result.envelope.mean()))
    freqs = np.fft.rfftfreq(result.envelope.size, 1 / result.fs)
    peak = freqs[1 + int(np.argmax(spectrum[1:]))]
    assert peak == pytest.approx(750e3, rel=0.1)


def test_zero_span_as_trace():
    analyzer = SpectrumAnalyzer()
    result = analyzer.zero_span(_tone_trace(48e6, label="x"), 48e6)
    as_trace = result.as_trace()
    assert as_trace.meta["f_center"] == pytest.approx(48e6)
    assert "48MHz" in as_trace.label


def test_rasc_monitor_alarm_timeline():
    class StepDetector:
        def __init__(self):
            self.count = 0

        def update(self, feature):
            self.count += 1

            class Decision:
                alarm = self.count >= 5

            return Decision()

    traces = [_tone_trace(48e6) for _ in range(8)]
    monitor = RascMonitor(
        feature_fn=lambda t: t.rms(),
        detector=StepDetector(),
        processing_latency_s=1e-3,
    )
    report = monitor.monitor(traces)
    assert report.alarm_index == 4
    assert report.alarm_time_s == pytest.approx(
        5 * (traces[0].duration + 1e-3)
    )
    assert len(report.features_db) == 5
    # Per-window bookkeeping (shared with the runtime subsystem).
    assert report.window_indices == (0, 1, 2, 3, 4)
    assert report.alarms == (4,)
    assert report.window_times_s == pytest.approx(
        tuple((i + 1) * report.trace_period_s for i in range(5))
    )
    # The report owns trigger arithmetic (no hand-rolled bookkeeping).
    assert report.traces_to_detect(trigger_index=3) == 2
    assert report.traces_to_detect(trigger_index=5) is None
    assert report.state_at(0, warmup=2, trigger_index=3) == "warm-up"
    assert report.state_at(2, warmup=2, trigger_index=3) == "armed, quiet"
    assert report.state_at(3, warmup=2, trigger_index=3) == "TROJAN ACTIVE"
    assert report.state_at(4, warmup=2, trigger_index=3) == "ALARM"


def test_rasc_monitor_watch_past_first_alarm():
    class EveryThird:
        def __init__(self):
            self.count = 0

        def update(self, feature):
            self.count += 1
            alarm = self.count % 3 == 0

            class Decision:
                pass

            Decision.alarm = alarm
            return Decision()

    traces = [_tone_trace(48e6) for _ in range(7)]
    monitor = RascMonitor(lambda t: t.rms(), EveryThird())
    report = monitor.monitor(traces, stop_on_alarm=False)
    assert len(report.features_db) == 7
    assert report.alarms == (2, 5)
    assert report.alarm_index == 2


def test_rasc_monitor_requires_traces():
    monitor = RascMonitor(lambda t: 0.0, detector=None)
    with pytest.raises(MeasurementError):
        monitor.monitor([])
