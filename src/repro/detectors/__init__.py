"""Detector plugin registry (golden-model-free run-time methods).

One protocol (:class:`~repro.detectors.base.Detector`), three builtin
methods with deliberately complementary blind spots:

* ``welford`` — the paper's rolling-Welford self-baseline z-score over
  absolute sideband levels.  Sees every *triggered* Trojan (T1..T4);
  structurally blind to the always-on family, which it absorbs into
  its baseline from window 0.
* ``spectral`` — reference-free sideband excess over the same
  spectrum's noise floor (after arXiv:2601.20163).  Armed from window
  0, so it sees the always-on family immediately.
* ``persistence`` — cross-scale persistence of the sideband excess
  (after arXiv:2603.16058).  Sees implants that emit on *every*
  window; structurally blind to activation spans shorter than its
  coarsest scale.

The comparative detector × Trojan-class sweep grid (``repro sweep
--grid detectors``) pins this blind-spot structure as a committed
expected-outcome matrix.

Builtins resolve lazily: importing this package registers their names
only; the plugin modules import on first
:func:`~repro.detectors.registry.get`.
"""

from .base import BankStep, BankTimeline, Detector
from .registry import available, get, make_detector, register

register("welford", "repro.detectors.welford:WelfordDetector")
register("spectral", "repro.detectors.spectral:SpectralDetector")
register("persistence", "repro.detectors.persistence:PersistenceDetector")

__all__ = [
    "BankStep",
    "BankTimeline",
    "Detector",
    "available",
    "get",
    "make_detector",
    "register",
]
