"""Sideband bookkeeping and prominent-component identification.

With a 33 MHz clock and an 11-cycle AES block, the Trojans' round-
synchronous switching modulates the clock-harmonic comb at the 5th
block harmonic (15 MHz).  The ~50 %-duty supply-current kernel keeps
odd clock harmonics only, so the Trojan sidebands appear at

    33 MHz + 15 MHz = 48 MHz      (1st harmonic, upper sideband)
    99 MHz - 15 MHz = 84 MHz      (3rd harmonic, lower sideband)

exactly where the paper finds its "two prominent frequency components".
The mirror images (18 MHz, 114 MHz) are suppressed by the measurement
chain's band shaping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ...config import SimConfig
from ...dsp.transforms import Spectrum
from ...errors import AnalysisError
from ...trojans.base import SIDEBAND_BLOCK_HARMONIC

#: Clock-harmonic/offset pairs of the suppressed image sidebands.
IMAGE_OFFSET_HARMONICS: Tuple[Tuple[int, int], ...] = ((1, -1), (3, +1))

#: Half-width of each noise-floor probe window [Hz] (see
#: :func:`noise_probe_frequencies`).
NOISE_PROBE_HALFWIDTH = 500e3


def clock_harmonics(config: SimConfig, f_max: float = 120e6) -> List[float]:
    """Clock harmonics inside the display band."""
    harmonics = []
    k = 1
    while k * config.f_clock <= f_max:
        harmonics.append(k * config.f_clock)
        k += 1
    return harmonics


def sideband_frequencies(config: SimConfig) -> Tuple[float, float]:
    """The two prominent Trojan sideband frequencies [Hz] (48/84 MHz)."""
    f_mod = SIDEBAND_BLOCK_HARMONIC * config.f_block
    return (config.f_clock + f_mod, 3.0 * config.f_clock - f_mod)


def image_frequencies(config: SimConfig) -> Tuple[float, float]:
    """The band-shaped-away image sidebands [Hz] (18/114 MHz)."""
    f_mod = SIDEBAND_BLOCK_HARMONIC * config.f_block
    return (config.f_clock - f_mod, 3.0 * config.f_clock + f_mod)


def _amp_near(spectrum: Spectrum, freq: float, halfwidth: float) -> float:
    """Peak amplitude within ``freq +- halfwidth``."""
    mask = np.abs(spectrum.freqs - freq) <= halfwidth
    if not mask.any():
        raise AnalysisError(
            f"no spectrum bins within {halfwidth/1e3:.0f} kHz of "
            f"{freq/1e6:.1f} MHz"
        )
    return float(spectrum.amps[mask].max())


def sideband_amplitude(
    spectrum: Spectrum,
    config: SimConfig,
    halfwidth: float = 250e3,
) -> float:
    """RMS of the two prominent sideband amplitudes [V].

    The linear-amplitude form is what the localizer ranks sensors by:
    identical coils make absolute amplitudes directly comparable, and
    a quiet corner sensor cannot win on a large *relative* change the
    way it could with a dB score.
    """
    lower, upper = sideband_frequencies(config)
    return float(
        np.sqrt(
            0.5
            * (
                _amp_near(spectrum, lower, halfwidth) ** 2
                + _amp_near(spectrum, upper, halfwidth) ** 2
            )
        )
    )


def sideband_amplitudes(
    freqs: np.ndarray,
    amps: np.ndarray,
    config: SimConfig,
    halfwidth: float = 250e3,
) -> np.ndarray:
    """Batched :func:`sideband_amplitude` over an amplitude stack.

    ``amps`` is ``(n_spectra, n_points)`` on a shared frequency axis
    (e.g. one display grid per rendered capture); the band masks are
    computed once.  Row ``i`` equals ``sideband_amplitude`` of the
    corresponding :class:`Spectrum`.
    """
    amps = np.asarray(amps, dtype=float)
    if amps.ndim != 2:
        raise AnalysisError("sideband_amplitudes expects a 2-D stack")
    lower, upper = sideband_frequencies(config)
    total = np.zeros(amps.shape[0])
    for freq in (lower, upper):
        mask = np.abs(freqs - freq) <= halfwidth
        if not mask.any():
            raise AnalysisError(
                f"no spectrum bins within {halfwidth/1e3:.0f} kHz of "
                f"{freq/1e6:.1f} MHz"
            )
        total += amps[:, mask].max(axis=1) ** 2
    return np.sqrt(0.5 * total)


def sideband_display_bins(
    grid: np.ndarray,
    config: SimConfig,
    halfwidth: float = 250e3,
) -> np.ndarray:
    """Display bins the sideband features actually read.

    The indices of every grid point within ``halfwidth`` of either
    prominent sideband.  Feeding exactly these columns (e.g. from
    ``SpectrumAnalyzer.display_bins``) to :func:`sideband_features_db`
    is bit-identical to evaluating the full display: the per-frequency
    masks select the same amplitude columns either way, because the
    two sidebands are far apart relative to ``halfwidth``.
    """
    lower, upper = sideband_frequencies(config)
    mask = (np.abs(grid - lower) <= halfwidth) | (
        np.abs(grid - upper) <= halfwidth
    )
    bins = np.flatnonzero(mask)
    if bins.size == 0:
        raise AnalysisError(
            f"no display bins within {halfwidth/1e3:.0f} kHz of the "
            "sideband frequencies"
        )
    return bins


def sideband_features_db(
    freqs: np.ndarray,
    amps: np.ndarray,
    config: SimConfig,
    halfwidth: float = 250e3,
) -> np.ndarray:
    """Batched :func:`sideband_feature_db` over an amplitude stack."""
    sb = sideband_amplitudes(freqs, amps, config, halfwidth)
    floor = np.finfo(float).tiny
    return 20.0 * np.log10(np.maximum(sb, floor) / 1e-6)


def noise_probe_frequencies(
    config: SimConfig, f_max: float = 120e6
) -> List[float]:
    """Noise-floor probe frequencies [Hz]: midway between harmonics.

    The reference-free detectors (arXiv:2601.20163 / 2603.16058 style)
    need a noise-floor estimate from the *same* spectrum — no golden
    model, no self-history.  The probes sit at ``(k + 0.5) * f_clock``
    (16.5, 49.5, 82.5, 115.5 MHz for the 33 MHz clock): maximally far
    from every clock harmonic, and — because the Trojan sidebands sit
    at 15 MHz offsets — at least 1.5 MHz from every sideband and image
    component, so they see broadband noise only.
    """
    probes = []
    k = 0
    while (k + 0.5) * config.f_clock <= f_max:
        probes.append((k + 0.5) * config.f_clock)
        k += 1
    return probes


def noise_floor_display_bins(
    grid: np.ndarray,
    config: SimConfig,
    halfwidth: float = NOISE_PROBE_HALFWIDTH,
) -> np.ndarray:
    """Display bins inside any noise-floor probe window.

    Per-frequency criteria, so restricting a display to any superset
    of these bins selects exactly the same columns — the partial
    display evaluation of the runtime monitor stays bit-identical to
    the full display (same argument as
    :func:`sideband_display_bins`).
    """
    mask = np.zeros(grid.shape, dtype=bool)
    for probe in noise_probe_frequencies(config, float(grid[-1])):
        mask |= np.abs(grid - probe) <= halfwidth
    bins = np.flatnonzero(mask)
    if bins.size == 0:
        raise AnalysisError(
            f"no display bins within {halfwidth/1e3:.0f} kHz of the "
            "noise-floor probes"
        )
    return bins


def noise_floor_db(
    freqs: np.ndarray,
    amps: np.ndarray,
    config: SimConfig,
    halfwidth: float = NOISE_PROBE_HALFWIDTH,
) -> np.ndarray:
    """Per-spectrum noise-floor estimate [dBuV], batched.

    The median amplitude over the noise-floor probe bins of each row
    of an ``(n_spectra, n_points)`` amplitude stack.  The median makes
    the estimate robust to a stray narrowband component landing inside
    one probe window.
    """
    amps = np.asarray(amps, dtype=float)
    if amps.ndim != 2:
        raise AnalysisError("noise_floor_db expects a 2-D stack")
    bins = noise_floor_display_bins(np.asarray(freqs), config, halfwidth)
    floor = np.median(amps[:, bins], axis=1)
    tiny = np.finfo(float).tiny
    return 20.0 * np.log10(np.maximum(floor, tiny) / 1e-6)


def sideband_excess_db(
    freqs: np.ndarray,
    amps: np.ndarray,
    config: SimConfig,
    halfwidth: float = 250e3,
) -> np.ndarray:
    """Reference-free detection statistic: sideband excess [dB], batched.

    The sideband RMS of each spectrum in dB *over that same spectrum's
    own noise floor* — no golden model, no matched reference workload,
    no self-baseline history.  An always-on Trojan's sidebands are
    anomalous from the very first captured window, which is the whole
    point: the statistic needs no baseline→active transition.
    """
    return sideband_features_db(freqs, amps, config, halfwidth) - (
        noise_floor_db(freqs, amps, config)
    )


def excess_display_bins(
    grid: np.ndarray,
    config: SimConfig,
    halfwidth: float = 250e3,
) -> np.ndarray:
    """Display bins :func:`sideband_excess_db` actually reads.

    The union of the sideband bins and the noise-floor probe bins —
    still a small fraction of the display grid, so the runtime
    monitor's partial display evaluation stays cheap, and (both masks
    being per-frequency criteria) bit-identical to the full display.
    """
    return np.union1d(
        sideband_display_bins(grid, config, halfwidth),
        noise_floor_display_bins(grid, config),
    )


def sideband_feature_db(
    spectrum: Spectrum,
    config: SimConfig,
    halfwidth: float = 250e3,
) -> float:
    """The run-time detection statistic of one spectrum [dBuV].

    The sideband RMS of :func:`sideband_amplitude` in dB relative to
    1 uV.  An absolute level (rather than a carrier-normalized ratio)
    keeps every Trojan's signature one-sided: all four payloads *add*
    sideband energy, while T4's heater would partially mask a
    carrier-normalized ratio by raising the clock harmonics too.  Gain
    drift is handled by the detector's self-referencing baseline.
    """
    sb = sideband_amplitude(spectrum, config, halfwidth)
    floor = np.finfo(float).tiny
    return float(20.0 * np.log10(max(sb, floor) / 1e-6))


def added_sideband_scores(
    psa,
    analyzer,
    coils,
    baseline_records: Sequence,
    active_records: Sequence,
    active_offset: int,
) -> np.ndarray:
    """Added sideband amplitude [V] per programmed coil, batched.

    The shared scoring kernel of the localization stages (quadrant
    refinement, adaptive scan levels): every (coil, record) capture of
    both populations renders as **one** engine pass
    (``psa.measure_coils_batch`` over a coupling stack), the display
    spectra and band features are extracted in one vectorized pass,
    and each coil scores ``mean(active) - mean(baseline)``.

    Bit-identical to the sequential per-(coil, record) loops: single
    captures render the same samples inside any batch (the engine's
    determinism contract), rows of the batched display/feature pass
    equal the per-trace spectra, and the mean-difference uses the same
    reduction.

    Parameters
    ----------
    psa:
        The :class:`~repro.core.array.ProgrammableSensorArray` to
        render through.
    analyzer:
        The :class:`~repro.instruments.spectrum_analyzer.SpectrumAnalyzer`
        providing the display transform.
    coils:
        Programmed coils to score, one receiver row each.
    baseline_records, active_records:
        Matched Trojan-inactive / Trojan-active activity records.
    active_offset:
        RNG trace-index offset of the active population (baseline
        captures use ``0..n-1``).

    Returns
    -------
    numpy.ndarray
        One added-amplitude score [V] per coil, in ``coils`` order.
    """
    from ...engine import RenderPlan

    plan = RenderPlan()
    ticket = enqueue_added_sideband_scores(
        plan, psa, coils, baseline_records, active_records, active_offset
    )
    plan.execute()
    return finish_added_sideband_scores(
        ticket, psa.config, analyzer, len(coils), len(baseline_records)
    )


def enqueue_added_sideband_scores(
    plan,
    psa,
    coils,
    baseline_records: Sequence,
    active_records: Sequence,
    active_offset: int,
):
    """Enqueue the render phase of :func:`added_sideband_scores`.

    Returns the plan ticket; after ``plan.execute()``, feed it to
    :func:`finish_added_sideband_scores`.  Splitting the phases lets
    many scoring passes (all quadrants of a localization, every window
    of a scan level, every repeat of a sweep cell) join one fused
    engine pass.
    """
    n_base = len(baseline_records)
    records = list(baseline_records) + list(active_records)
    indices = list(range(n_base)) + [
        active_offset + idx for idx in range(len(active_records))
    ]
    return psa.enqueue_coils(plan, coils, records, trace_indices=indices)


def finish_added_sideband_scores(
    ticket, config, analyzer, n_coils: int, n_base: int
) -> np.ndarray:
    """Score an executed :func:`enqueue_added_sideband_scores` ticket."""
    batch = ticket.result()
    grid, display = analyzer.display_matrix(
        batch.samples.reshape(-1, batch.n_samples), batch.fs
    )
    amps = sideband_amplitudes(grid, display, config).reshape(n_coils, -1)
    return np.array(
        [float(np.mean(row[n_base:]) - np.mean(row[:n_base])) for row in amps]
    )


def find_prominent_components(
    active: Spectrum,
    baseline: Spectrum,
    config: SimConfig,
    top_n: int = 2,
    min_separation: float = 4e6,
    harmonic_mask: float = 2e6,
) -> List[Tuple[float, float]]:
    """Stage-1 of the cross-domain analysis: where did energy appear?

    Compares the Trojan-active average spectrum against the inactive
    one, masks the clock harmonics themselves (they move with overall
    activity, not with Trojan structure), and returns the ``top_n``
    peaks of *added amplitude* as ``(frequency, delta_db)`` pairs.
    Ranking by added amplitude (not by dB ratio) is what makes the
    48/84 MHz sidebands come out on top: they are the largest new
    components, while near-noise-floor bins can show huge ratios with
    negligible energy.
    """
    if active.freqs.shape != baseline.freqs.shape or not np.allclose(
        active.freqs, baseline.freqs
    ):
        raise AnalysisError("spectra have mismatched frequency axes")
    floor = np.finfo(float).tiny
    delta_db = 20.0 * np.log10(
        np.maximum(active.amps, floor) / np.maximum(baseline.amps, floor)
    )
    added = active.amps - baseline.amps
    freqs = active.freqs
    masked = added.copy()
    for harmonic in clock_harmonics(config, float(freqs[-1])):
        masked[np.abs(freqs - harmonic) <= harmonic_mask] = -np.inf
    masked[freqs < 5e6] = -np.inf  # ignore the near-DC shelf
    peaks: List[Tuple[float, float]] = []
    for _ in range(top_n):
        index = int(np.argmax(masked))
        if not np.isfinite(masked[index]) or masked[index] <= 0:
            break
        peaks.append((float(freqs[index]), float(delta_db[index])))
        masked[np.abs(freqs - freqs[index]) < min_separation] = -np.inf
    return peaks
