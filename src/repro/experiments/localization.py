"""Section VI-D localization: score maps and adaptive refinement.

For each Trojan, the per-sensor sideband score map must peak at
sensor 10 (where the Trojans live), sensor 0 must stay quiet, and the
quadrant refinement must point at the correct quadrant of sensor 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.analysis.localizer import LocalizationResult, Localizer
from ..workloads.scenarios import reference_for, scenario_by_name
from .context import ExperimentContext, default_context
from .reporting import format_table

#: Ground truth from the floorplan (one Trojan per sensor-10 quadrant).
EXPECTED_QUADRANTS = {"T1": "nw", "T2": "ne", "T3": "sw", "T4": "se"}

#: The sensor hosting every Trojan.
EXPECTED_SENSOR = 10


@dataclass(frozen=True)
class LocalizationExperimentResult:
    """Localization outcome for all four Trojans."""

    results: Dict[str, LocalizationResult]

    @property
    def sensors_correct(self) -> bool:
        """All Trojans localized to sensor 10."""
        return all(
            r.sensor_index == EXPECTED_SENSOR for r in self.results.values()
        )

    @property
    def quadrants_correct(self) -> bool:
        """All refinements point at the true quadrant."""
        return all(
            self.results[t].quadrant == EXPECTED_QUADRANTS[t]
            for t in self.results
        )


def run_localization(
    ctx: Optional[ExperimentContext] = None,
    n_records: int = 3,
    refine: bool = True,
) -> LocalizationExperimentResult:
    """Localize each Trojan from matched active/inactive populations."""
    ctx = ctx or default_context()
    localizer = Localizer(ctx.psa)
    results = {}
    for trojan in EXPECTED_QUADRANTS:
        reference = reference_for(trojan)
        scenario = scenario_by_name(trojan)
        base = [ctx.campaign.record(reference, i) for i in range(n_records)]
        active = [
            ctx.campaign.record(scenario, 500 + i) for i in range(n_records)
        ]
        results[trojan] = localizer.localize(base, active, refine=refine)
    return LocalizationExperimentResult(results=results)


def format_localization(result: LocalizationExperimentResult) -> str:
    """Render the localization summary."""
    rows = []
    for trojan, loc in result.results.items():
        position = f"({loc.position[0]*1e6:.0f}, {loc.position[1]*1e6:.0f}) um"
        rows.append(
            (
                trojan,
                loc.sensor_index,
                f"{loc.margin_db:.1f}",
                loc.quadrant or "-",
                EXPECTED_QUADRANTS[trojan],
                position,
            )
        )
    header = (
        "Section VI-D — localization (expected: sensor 10 for every "
        "Trojan)\n"
    )
    return header + format_table(
        ["trojan", "sensor", "margin [dB]", "quadrant", "expected", "position"],
        rows,
    )
