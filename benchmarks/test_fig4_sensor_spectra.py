"""Figure 4 — Trojan-active vs inactive spectra per sensor.

Paper: prominent components at 48 MHz / 84 MHz show up at sensor 10
when any of T1..T4 is active; sensor 0 shows "hardly any spectrum
difference" (the spatial-resolution claim).
"""

import pytest

from repro.experiments.fig4 import format_fig4, run_fig4


def test_fig4_sensor_spectra(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_fig4(ctx, n_traces=3), rounds=1, iterations=1
    )
    # Every Trojan raises the sensor-10 sideband feature strongly.
    for trojan, panel in result.sensor10.items():
        assert panel.sideband_delta_db > 6.0, trojan
        assert panel.prominent, trojan
    # T1's prominent components are exactly the paper's 48/84 MHz.
    t1_freqs = sorted(f for f, _ in result.sensor10["T1"].prominent)
    assert t1_freqs[0] == pytest.approx(48e6, abs=1e6)
    assert t1_freqs[1] == pytest.approx(84e6, abs=1e6)
    # Every Trojan's components belong to the clock-harmonic sideband
    # family: offset from a harmonic by a multiple of half the block
    # rate (T2's plaintext gating at 1.5 MHz adds half-multiples).
    for trojan, panel in result.sensor10.items():
        for freq, _delta in panel.prominent:
            offsets = [abs(freq - h) for h in (33e6, 66e6, 99e6)]
            nearest = min(offsets)
            assert nearest / 1.5e6 == pytest.approx(
                round(nearest / 1.5e6), abs=0.2
            ), (trojan, freq)
    # Sensor 0 stays quiet (the null panel).
    assert abs(result.sensor0.sideband_delta_db) < 0.3 * min(
        panel.sideband_delta_db for panel in result.sensor10.values()
    )
    print()
    print(format_fig4(result))
