"""Bench and run-time instrumentation models.

* :class:`SpectrumAnalyzer` — sweep mode (DC-120 MHz, 2000 display
  points, trace averaging) and zero-span mode (time-domain envelope at
  a tuned frequency), as used in Section VI;
* :class:`Oscilloscope` / :func:`quantize` — clock-edge triggered
  capture with ADC quantization;
* :func:`chirp` — the 70 mV frequency-sweeping source of the
  Section VI-C current-response experiment;
* :class:`RascMonitor` — the RASC-style on-board run-time monitor that
  replaces the bench instruments in deployment and carries the MTTD
  accounting.
"""

from .adc import AdcSpec, quantize
from .oscilloscope import Oscilloscope
from .spectrum_analyzer import SpectrumAnalyzer, ZeroSpanResult
from .signal_gen import chirp
from .rasc import RascMonitor, RascReport

__all__ = [
    "AdcSpec",
    "quantize",
    "Oscilloscope",
    "SpectrumAnalyzer",
    "ZeroSpanResult",
    "chirp",
    "RascMonitor",
    "RascReport",
]
