"""Run-time monitoring throughput: streaming pipeline vs legacy loop.

Monitors the same scripted always-on session — **every sensor of the
array**, the paper's deployment — three ways:

* **legacy** — the seed example's shape scaled to the array: for each
  sensor, one single-capture render, one spectrum, one feature and
  one detector update per window (``RascMonitor`` per sensor over
  ``psa.measure`` output);
* **streaming** — ``repro.runtime``: a ``LiveSource`` renders every
  sensor's chunk in one batched engine pass (the per-record EMF
  synthesis is shared across all sensors instead of recomputed per
  single-sensor capture) and the ``EscalationPipeline`` featurizes
  each chunk in one vectorized pass over a ``DetectorBank``;
* **fleet** — four concurrent chip monitors through the
  ``FleetScheduler`` (aggregate windows/sec of the service path).

The monitored chip's workload activity is *pre-simulated once and
shared by every path* (``LiveSource.warm_records``): in deployment the
chip's activity is physical reality, and MTTD counts capture plus
on-board processing — so windows/sec here measures the monitor, not
the test bench's activity simulator.

Legacy and streaming must agree bit-for-bit on features and alarms;
the streaming pipeline must beat the legacy loop on windows/sec (>=
2x on the full stream).  Results land in ``BENCH_runtime.json`` at the
repo root so the performance trajectory is tracked from PR to PR.

Set ``RUNTIME_SMOKE=1`` for a short CI variant: equivalence and the
beat-the-legacy-loop check still run, the 2x floor is not enforced.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.analysis.detector import DetectorConfig, RuntimeDetector
from repro.core.analysis.spectral import sideband_feature_db
from repro.instruments.rasc import RascMonitor
from repro.instruments.spectrum_analyzer import SpectrumAnalyzer
from repro.runtime import (
    ActivationSchedule,
    ChipSpec,
    EscalationPipeline,
    FleetScheduler,
    LiveSource,
    PipelineConfig,
    build_chip_monitor,
)
from repro.workloads.scenarios import scenario_by_name

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

SMOKE = os.environ.get("RUNTIME_SMOKE", "") not in ("", "0")
#: Streaming-over-legacy throughput floor on the full stream.
MIN_SPEEDUP = 2.0

N_BASELINE = 8 if SMOKE else 24
N_ACTIVE = 4 if SMOKE else 8
CHUNK = 4 if SMOKE else 16
WARMUP = 6
FLEET_CHIPS = 4
#: Fleet timing trials; the fastest is reported (box-noise resistant).
FLEET_ROUNDS = 1 if SMOKE else 5

MONITOR_TUNING = PipelineConfig(
    detector=DetectorConfig(warmup=WARMUP),
    identify=False,  # throughput of the MONITOR stage itself
    localize=False,
)


def _legacy_monitor_loop(ctx, analyzer, schedule, records, sensors):
    """The seed example's shape: everything one trace at a time.

    One per-trace monitor per sensor (the paper's RASC board watching
    each stream), each paying its own single-capture render and
    spectrum per window.
    """
    reports = []
    for sensor in sensors:
        monitor = RascMonitor(
            lambda trace: sideband_feature_db(
                analyzer.spectrum(trace), ctx.config
            ),
            RuntimeDetector(DetectorConfig(warmup=WARMUP)),
        )
        traces = []
        for segment in schedule.segments:
            for index in segment.indices:
                record = records[(segment.scenario, index)]
                traces.append(ctx.psa.measure(record, sensor, index))
        reports.append(monitor.monitor(traces, stop_on_alarm=False))
    return reports


def test_runtime_throughput(ctx, benchmark):
    analyzer = SpectrumAnalyzer()
    schedule = ActivationSchedule.step(
        "T4", n_baseline=N_BASELINE, n_active=N_ACTIVE
    )
    n_windows = schedule.n_windows
    sensors = tuple(range(ctx.psa.n_sensors))

    # Warm shared caches (kernel spectra, gain curves) and pre-simulate
    # the chip's workload activity once for every path: in deployment
    # the activity is the chip's, not the monitor's.
    warm = ctx.campaign.record(scenario_by_name("baseline"), 0)
    ctx.psa.render([warm], trace_indices=[0], sensors=[10])
    records: dict = {}
    source = LiveSource(
        ctx.campaign,
        schedule,
        sensors=sensors,
        chunk=CHUNK,
        record_cache=records,
    )
    source.warm_records()

    start = time.perf_counter()
    legacy = _legacy_monitor_loop(ctx, analyzer, schedule, records, sensors)
    legacy_seconds = time.perf_counter() - start

    pipeline = EscalationPipeline(
        ctx.config,
        n_streams=len(sensors),
        pipeline=MONITOR_TUNING,
        analyzer=analyzer,
    )
    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: pipeline.run(source), rounds=1, iterations=1
    )
    streaming_seconds = time.perf_counter() - start

    # Equivalence: the streamed pipeline is the same monitor bank.
    for position, legacy_report in enumerate(legacy):
        assert np.array_equal(
            report.features_db[position],
            np.asarray(legacy_report.features_db),
        ), f"sensor {sensors[position]} features diverge"
        assert (
            report.features_db.shape[1] == len(legacy_report.features_db)
        )
    legacy_alarm_union = sorted(
        {index for rep in legacy for index in rep.alarms}
    )
    assert list(report.alarms) == legacy_alarm_union
    assert report.detected

    # Fleet: the same session on N chips, interleaved (records
    # pre-simulated per member, same as the single-chip paths).  The
    # scheduler tick is timed best-of-N (matching the engine bench's
    # batched row): each trial re-runs the full session, and the
    # fastest trial is the figure of merit on a shared, noisy box.
    def _fleet_run(n_chips):
        specs = [
            ChipSpec(
                chip_id=f"chip{i}",
                trojan=("T1", "T2", "T3", "T4")[i % 4],
                seed=ctx.config.seed + i,
                n_baseline=N_BASELINE,
                n_active=N_ACTIVE,
                chunk=CHUNK,
                detector=DetectorConfig(warmup=WARMUP),
            )
            for i in range(n_chips)
        ]
        monitors = [
            build_chip_monitor(
                spec, config=ctx.config, pipeline_config=MONITOR_TUNING
            )
            for spec in specs
        ]
        for monitor in monitors:
            monitor.source.warm_records()
        return FleetScheduler(monitors, queue_depth=2).run()

    def _best_fleet(n_chips):
        reports = [_fleet_run(n_chips) for _ in range(FLEET_ROUNDS)]
        for trial in reports:
            assert trial.all_detected
        return min(reports, key=lambda trial: trial.wall_seconds)

    fleet_report = _best_fleet(FLEET_CHIPS)
    single_report = _best_fleet(1)
    # On one worker thread the scheduler interleaves chips rather than
    # parallelizing them, so the ideal aggregate windows/sec at four
    # chips equals the single-chip figure; the ratio measures pure
    # scheduling overhead (1.0 = free interleaving).
    scaling_efficiency = (
        fleet_report.windows_per_sec / single_report.windows_per_sec
    )

    legacy_wps = n_windows / legacy_seconds
    streaming_wps = n_windows / streaming_seconds
    speedup = streaming_wps / legacy_wps
    payload = {
        "stream": {
            "n_baseline": N_BASELINE,
            "n_active": N_ACTIVE,
            "n_windows": n_windows,
            "n_sensors": len(sensors),
            "chunk": CHUNK,
            "trojan": "T4",
            "records_presimulated": True,
        },
        "smoke": SMOKE,
        "legacy_per_trace": {
            "seconds": round(legacy_seconds, 3),
            "windows_per_sec": round(legacy_wps, 2),
        },
        "streaming_pipeline": {
            "seconds": round(streaming_seconds, 3),
            "windows_per_sec": round(streaming_wps, 2),
        },
        "fleet": {
            "n_chips": fleet_report.n_chips,
            "total_windows": fleet_report.total_windows,
            "rounds": FLEET_ROUNDS,
            "seconds": round(fleet_report.wall_seconds, 3),
            "windows_per_sec": round(fleet_report.windows_per_sec, 2),
            "max_queue_len": fleet_report.max_queue_len,
        },
        "fleet_single": {
            "n_chips": single_report.n_chips,
            "total_windows": single_report.total_windows,
            "rounds": FLEET_ROUNDS,
            "seconds": round(single_report.wall_seconds, 3),
            "windows_per_sec": round(single_report.windows_per_sec, 2),
        },
        "fleet_scaling": {
            "chips": [single_report.n_chips, fleet_report.n_chips],
            "scaling_efficiency": round(scaling_efficiency, 3),
        },
        "speedup": round(speedup, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print()
    print(json.dumps(payload, indent=2))

    # The streaming pipeline must beat the legacy per-trace loop.
    assert speedup > 1.0, (
        f"streaming pipeline ({streaming_wps:.1f} win/s) slower than the "
        f"legacy loop ({legacy_wps:.1f} win/s)"
    )
    if not SMOKE:
        assert speedup >= MIN_SPEEDUP, (
            f"streaming speedup {speedup:.2f}x below {MIN_SPEEDUP}x"
        )
