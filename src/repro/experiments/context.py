"""Shared experiment fixtures.

Building the chip + PSA (coupling matrices in particular) costs a few
seconds; experiments and benchmarks share one lazily-built context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..chip.testchip import TestChip
from ..config import SimConfig
from ..core.array import ProgrammableSensorArray
from ..workloads.campaign import MeasurementCampaign

#: The key programmed into every experiment chip.
DEFAULT_KEY = bytes(range(16))


@dataclass
class ExperimentContext:
    """One assembled chip + sensor array + campaign."""

    config: SimConfig
    chip: TestChip
    psa: ProgrammableSensorArray
    campaign: MeasurementCampaign

    @classmethod
    def build(cls, config: Optional[SimConfig] = None) -> "ExperimentContext":
        """Assemble a fresh context."""
        config = config or SimConfig()
        chip = TestChip(DEFAULT_KEY, config)
        psa = ProgrammableSensorArray(chip)
        return cls(
            config=config,
            chip=chip,
            psa=psa,
            campaign=MeasurementCampaign(chip, psa),
        )

    def close(self) -> None:
        """Release the engine's backend resources (pool, shared arena)."""
        self.psa.close()


_default: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """The process-wide shared context (built on first use)."""
    global _default
    if _default is None:
        _default = ExperimentContext.build()
    return _default
