"""Engine-facing view of the coupling-geometry cache.

The memoization itself lives next to the computation in
:mod:`repro.em.coupling` (building a :class:`~repro.em.coupling.CouplingMatrix`
transparently reuses any previously-built geometry with the same
content key); this module re-exports the key builder and the
administrative hooks so engine users have one place to inspect or
reset caching behavior.
"""

from __future__ import annotations

from ..em.coupling import (
    clear_coupling_cache,
    coupling_cache_stats,
    coupling_geometry_key,
    kernel_spectrum_stats,
)

__all__ = [
    "clear_coupling_cache",
    "coupling_cache_stats",
    "coupling_geometry_key",
    "kernel_spectrum_stats",
]
