"""PSA lattice programming."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import N_SWITCHES, N_WIRES, PITCH, PsaGrid
from repro.errors import GridProgrammingError


def test_lattice_dimensions_match_paper():
    """36 x 36 wires, 1296 switches (Section V-A)."""
    assert N_WIRES == 36
    assert N_SWITCHES == 1296
    grid = PsaGrid()
    assert sum(1 for _ in grid.iter_switches()) == 1296


def test_all_switches_start_off():
    grid = PsaGrid()
    assert grid.n_on == 0
    assert not grid.is_on(0, 0)


def test_turn_on_off():
    grid = PsaGrid()
    grid.turn_on(3, 5)
    assert grid.is_on(3, 5)
    assert grid.n_on == 1
    grid.turn_off(3, 5)
    assert not grid.is_on(3, 5)


def test_position_scales_with_pitch():
    x, y = PsaGrid.position(35, 0)
    assert x == pytest.approx(35 * PITCH)
    assert y == 0.0


def test_out_of_range_rejected():
    grid = PsaGrid()
    with pytest.raises(GridProgrammingError):
        grid.turn_on(36, 0)
    with pytest.raises(GridProgrammingError):
        grid.is_on(0, -1)


def test_ownership_conflict_detected():
    grid = PsaGrid()
    grid.turn_on(1, 1, owner="coil_a")
    with pytest.raises(GridProgrammingError):
        grid.turn_on(1, 1, owner="coil_b")
    # Same owner may re-assert its own switch.
    grid.turn_on(1, 1, owner="coil_a")


def test_program_is_atomic_on_conflict():
    grid = PsaGrid()
    grid.turn_on(2, 2, owner="existing")
    with pytest.raises(GridProgrammingError):
        grid.program([(0, 0), (1, 1), (2, 2)], owner="newcomer")
    # Nothing from the failed request may remain.
    assert not grid.is_on(0, 0)
    assert not grid.is_on(1, 1)


def test_release_by_owner():
    grid = PsaGrid()
    grid.program([(0, 0), (0, 1)], owner="a")
    grid.program([(5, 5)], owner="b")
    assert grid.release("a") == 2
    assert grid.n_on == 1
    assert grid.is_on(5, 5)


def test_owners_listing():
    grid = PsaGrid()
    grid.program([(0, 0)], owner="x")
    grid.program([(1, 1)], owner="y")
    assert grid.owners() == {"x", "y"}
    grid.clear()
    assert grid.owners() == set()
    assert grid.n_on == 0


@settings(max_examples=20, deadline=None)
@given(
    st.sets(
        st.tuples(
            st.integers(min_value=0, max_value=35),
            st.integers(min_value=0, max_value=35),
        ),
        max_size=64,
    )
)
def test_program_release_roundtrip(points):
    grid = PsaGrid()
    grid.program(points, owner="prop")
    assert grid.n_on == len(points)
    assert grid.on_crosspoints() == set(points)
    grid.release("prop")
    assert grid.n_on == 0


def test_snapshot_is_a_copy():
    grid = PsaGrid()
    grid.turn_on(0, 0)
    snap = grid.snapshot()
    snap[0, 0] = False
    assert grid.is_on(0, 0)


def test_ascii_art_renders():
    grid = PsaGrid()
    grid.turn_on(0, 35)  # on the sampled raster for any step
    art = grid.ascii_art(step=6)
    assert "#" in art and "." in art
