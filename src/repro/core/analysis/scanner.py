"""Adaptive scan localization — reshaping the array at run time.

Section III-A motivates the PSA's programmability: "it facilitates the
localization of any detected HTs by reshaping the sensing array."  The
fixed 16-sensor map (:mod:`~repro.core.analysis.localizer`) uses one
static shape; this module exploits the full flexibility: a quadtree
descent that starts from die-quadrant-scale coils and re-programs
progressively smaller windows around the strongest response, narrowing
the Trojan position without any precommitted sensor layout.

Each level programs five overlapping child windows of roughly half the
parent's size (four corners + center), scores each by the *added*
sideband amplitude between Trojan-active and Trojan-inactive captures,
and descends into the argmax.  A level is rendered as **one batched
engine pass** over every (window, record) capture — the windows'
coupling geometries are content-cached per synthesized coil, so
revisited windows cost nothing to rebuild — and the scores are
bit-identical to the retained sequential per-(coil, record) reference
path (``AdaptiveScanner(batched=False)``).

The scan is a *coarse* stage: thin-loop responses near window edges
bias the descent by up to ~2 lattice pitches per level, so the
converged position is good to roughly a window size (~200 um on the
1 mm die).  Use it to narrow the search without any precommitted
layout, then hand over to the fixed 16-sensor map with quadrant
refinement (:mod:`~repro.core.analysis.localizer`) for the precise
fix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...chip.power import ActivityRecord
from ...errors import AnalysisError
from ...instruments.spectrum_analyzer import SpectrumAnalyzer
from ..array import ProgrammableSensorArray
from ..coil import Coil, synthesize_rect_coil
from ..grid import N_WIRES, PITCH
from .spectral import added_sideband_scores, sideband_amplitude


@dataclass(frozen=True)
class ScanWindow:
    """One programmed scan window.

    Attributes
    ----------
    col0, row0:
        Lattice origin of the window's outer turn.
    size:
        Window side in lattice pitches.
    score:
        Added sideband amplitude [V] measured through this window.
    """

    col0: int
    row0: int
    size: int
    score: float

    @property
    def center(self) -> Tuple[float, float]:
        """Die coordinates of the window center [m]."""
        return (
            (self.col0 + self.size / 2.0) * PITCH,
            (self.row0 + self.size / 2.0) * PITCH,
        )


@dataclass(frozen=True)
class ScanResult:
    """Outcome of one adaptive scan.

    Attributes
    ----------
    position:
        Estimated Trojan location [m] (final window center).
    levels:
        Windows evaluated per level (each a list of four candidates).
    path:
        The winning window per level, coarse to fine.
    """

    position: Tuple[float, float]
    levels: List[List[ScanWindow]]
    path: List[ScanWindow]

    @property
    def final_window(self) -> ScanWindow:
        """The finest window the scan converged to."""
        return self.path[-1]

    @property
    def n_measurement_windows(self) -> int:
        """Programmed windows across the whole scan."""
        return sum(len(level) for level in self.levels)


class AdaptiveScanner:
    """Quadtree descent over programmable coils.

    Parameters
    ----------
    psa:
        The sensor array to program.
    analyzer:
        Spectrum analyzer model.
    min_size:
        Stop descending when the window side reaches this many
        pitches (6 pitches ~ 170 um).
    turns:
        Turns per scan coil (1 keeps the response monotonic in
        containment; see :func:`repro.core.sensors.quadrant_coil`).
    batched:
        Render each level's candidate windows as one batched engine
        pass over every (window, record) capture (the default).  The
        sequential per-(coil, record) path is retained as the
        reference implementation — both produce bit-identical scores
        and therefore identical descents.
    """

    def __init__(
        self,
        psa: ProgrammableSensorArray,
        analyzer: Optional[SpectrumAnalyzer] = None,
        min_size: int = 6,
        turns: int = 1,
        batched: bool = True,
    ):
        if min_size < 2:
            raise AnalysisError("min_size must be >= 2 pitches")
        self.psa = psa
        self.analyzer = analyzer or SpectrumAnalyzer()
        self.min_size = min_size
        self.turns = turns
        self.batched = batched

    # -- scoring -----------------------------------------------------------------

    def _window_coil(self, col0: int, row0: int, size: int) -> Coil:
        return synthesize_rect_coil(
            name=f"scan_{col0}_{row0}_{size}",
            col0=col0,
            row0=row0,
            size=size,
            turns=self.turns,
        )

    def _score(
        self,
        coil: Coil,
        baseline_records: Sequence[ActivityRecord],
        active_records: Sequence[ActivityRecord],
    ) -> float:
        """Added sideband amplitude [V] through one window.

        The sequential reference path: one single-capture render, one
        display spectrum and one band feature per (record, population).
        """
        config = self.psa.config
        base = [
            sideband_amplitude(
                self.analyzer.spectrum(
                    self.psa.measure_coil(coil, record, trace_index=idx)
                ),
                config,
            )
            for idx, record in enumerate(baseline_records)
        ]
        active = [
            sideband_amplitude(
                self.analyzer.spectrum(
                    self.psa.measure_coil(coil, record, trace_index=3000 + idx)
                ),
                config,
            )
            for idx, record in enumerate(active_records)
        ]
        return float(np.mean(active) - np.mean(base))

    def _score_windows(
        self,
        coils: Sequence[Coil],
        baseline_records: Sequence[ActivityRecord],
        active_records: Sequence[ActivityRecord],
    ) -> List[float]:
        """Added sideband amplitude [V] of every window of one level.

        The batched path renders all (window, record) captures of the
        level in one engine pass (``measure_coils_batch`` over a
        coupling stack) and extracts every band feature in one
        vectorized display-spectrum pass; scores are bit-identical to
        the sequential :meth:`_score` per window.
        """
        if not self.batched:
            return [
                self._score(coil, baseline_records, active_records)
                for coil in coils
            ]
        scores = added_sideband_scores(
            self.psa,
            self.analyzer,
            coils,
            baseline_records,
            active_records,
            active_offset=3000,
        )
        return [float(score) for score in scores]

    # -- descent -----------------------------------------------------------------

    def _children(
        self, col0: int, row0: int, size: int
    ) -> List[Tuple[int, int, int]]:
        """Overlapping half-size child windows, clamped to the lattice.

        Four corner children plus a centered one: a source sitting on a
        corner-children boundary is otherwise seen only edge-on, where
        the thin-loop response is least informative.
        """
        child = max(self.min_size, size // 2 + 1)
        far_c = min(col0 + size - child, N_WIRES - 1 - child)
        far_r = min(row0 + size - child, N_WIRES - 1 - child)
        mid_c = min((col0 + far_c) // 2, N_WIRES - 1 - child)
        mid_r = min((row0 + far_r) // 2, N_WIRES - 1 - child)
        children = {
            (col0, row0, child),
            (far_c, row0, child),
            (col0, far_r, child),
            (far_c, far_r, child),
            (mid_c, mid_r, child),
        }
        return sorted(children)

    def scan(
        self,
        baseline_records: Sequence[ActivityRecord],
        active_records: Sequence[ActivityRecord],
        start: Tuple[int, int, int] = (0, 0, N_WIRES - 1),
    ) -> ScanResult:
        """Run the descent; returns the refined position estimate.

        Parameters
        ----------
        baseline_records, active_records:
            Matched Trojan-inactive / Trojan-active activity records.
        start:
            Root window ``(col0, row0, size)`` — the whole lattice by
            default.

        Returns
        -------
        ScanResult
            Final position estimate [m] plus the full descent history.
        """
        if not baseline_records or not active_records:
            raise AnalysisError("need records for both populations")
        col0, row0, size = start
        levels: List[List[ScanWindow]] = []
        path: List[ScanWindow] = []
        while size > self.min_size:
            children = self._children(col0, row0, size)
            coils = [
                self._window_coil(c_col, c_row, c_size)
                for c_col, c_row, c_size in children
            ]
            scores = self._score_windows(
                coils, baseline_records, active_records
            )
            candidates = [
                ScanWindow(col0=c_col, row0=c_row, size=c_size, score=score)
                for (c_col, c_row, c_size), score in zip(children, scores)
            ]
            levels.append(candidates)
            best = max(candidates, key=lambda window: window.score)
            path.append(best)
            if best.size == size:  # clamped: no further progress possible
                break
            col0, row0, size = best.col0, best.row0, best.size
        if not path:
            raise AnalysisError(
                f"root window {start} is already at or below min_size"
            )
        return ScanResult(
            position=path[-1].center, levels=levels, path=path
        )
