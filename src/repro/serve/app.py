"""The fleet-scale streaming monitoring service (``repro serve``).

One long-running process watches many chip streams concurrently:

* an **asyncio front-end** (stdlib TCP + the :mod:`.protocol` HTTP/
  WebSocket codec) accepts replay-archive uploads, live onboarding
  requests and chunk-streaming sockets;
* each onboarded chip gets a :class:`ChipSession` — its own
  :class:`~repro.runtime.pipeline.EscalationPipeline` behind a
  **bounded** chunk queue, drained by a shared analysis thread pool
  (feature extraction releases the GIL in NumPy's FFT, so sessions
  genuinely overlap);
* ingress is **flow-controlled or shed, never unbounded**: HTTP
  uploads wait at the queue bound, WebSocket pushes are dropped past
  it (or past the service-wide high-water mark) with the typed
  :class:`~repro.runtime.events.Backpressure` /
  :class:`~repro.runtime.events.Shed` /
  :class:`~repro.runtime.events.Overload` contract shared with the
  in-process :class:`~repro.runtime.fleet.FleetScheduler`;
* ``GET /metrics`` and ``GET /chips/<id>/report`` render through the
  shared :mod:`repro.report` surface — the service adds transport,
  not another formatter.

Determinism: a chip session applies no policy of its own between
chunks, so a clean (unshed) streamed session is **bit-identical** —
same report, same event transcript — to running the offline
pipeline over the same archive, which ``tests/test_serve.py`` pins.

Endpoints
---------
==========  =========================  =====================================
``GET``     ``/healthz``               liveness + uptime
``GET``     ``/metrics``               :class:`~repro.serve.metrics.MetricsSnapshot`
``GET``     ``/chips``                 per-chip gauges
``GET``     ``/chips/<id>/report``     the chip's (interim) MonitorReport
``POST``    ``/chips/<id>/replay``     upload a ``.npz`` archive, stream it
``POST``    ``/chips/<id>/live``       onboard a server-rendered live chip
``WS``      ``/chips/<id>/ws``         push packed chunks, pull acks/report
``POST``    ``/shutdown``              graceful stop (headless deployments)
==========  =========================  =====================================
"""

from __future__ import annotations

import asyncio
import json
import logging
import re
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from functools import partial
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from ..engine.backends import backend_session_stats
from ..errors import AnalysisError, ReproError
from ..runtime import (
    Alarm,
    EscalationPipeline,
    EventBus,
    JsonlSink,
    MonitorReport,
    ReplaySource,
    build_chip_monitor,
    build_preset,
)
from ..store import ArtifactStore
from .metrics import ChipGauge, MetricsSnapshot, ThroughputMeter
from .protocol import (
    WS_BINARY,
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    WS_TEXT,
    HttpRequest,
    ProtocolError,
    json_response,
    read_request,
    read_ws_frame,
    unpack_chunk,
    websocket_handshake_bytes,
    ws_frame,
)
from .shedding import ChunkShedder, OverloadGuard

logger = logging.getLogger(__name__)

#: Chip ids are path segments and upload file names.
_CHIP_ID = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


@dataclass(frozen=True)
class ServeConfig:
    """Tuning of one monitoring service instance.

    Attributes
    ----------
    host, port:
        Bind address (port 0 picks a free port; the bound port is on
        :attr:`MonitorService.port` after start).
    preset:
        Named :class:`~repro.runtime.presets.MonitorPreset` providing
        pipeline tuning (warm-up, chunking) for onboarded chips.
    detector:
        Detection method override (None keeps the preset's).
    queue_depth:
        Bounded chunk queue per chip session.
    high_water_windows:
        Service-wide queued-window bound; past it, pushed work is
        shed until the backlog drains below half the mark.
    analysis_workers:
        Threads in the shared analysis pool.
    max_chips:
        Onboarding bound (503 past it).
    chunk_windows:
        Windows per chunk when the service itself chunks a stream
        (replay uploads).
    drill_delay_s:
        Artificial per-chunk analysis delay — the overload drill
        knob used by tests and capacity rehearsals; 0 in production.
    events_path:
        JSONL audit log of every event the service emits (None
        disables the sink).
    """

    host: str = "127.0.0.1"
    port: int = 0
    preset: str = "smoke"
    detector: Optional[str] = None
    queue_depth: int = 4
    high_water_windows: int = 256
    analysis_workers: int = 4
    max_chips: int = 1024
    chunk_windows: int = 16
    drill_delay_s: float = 0.0
    events_path: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise AnalysisError("queue_depth must be >= 1")
        if self.high_water_windows < 1:
            raise AnalysisError("high_water_windows must be >= 1")
        if self.analysis_workers < 1:
            raise AnalysisError("analysis_workers must be >= 1")
        if self.max_chips < 1:
            raise AnalysisError("max_chips must be >= 1")
        build_preset(self.preset)


class _LockedBus(EventBus):
    """An :class:`EventBus` safe for multi-threaded emission.

    Analysis workers emit from pool threads while the event loop
    emits shed/overload events; one lock keeps counts and sink
    writes coherent and transcripts serialized.
    """

    def __init__(self) -> None:
        super().__init__()
        self._lock = threading.RLock()

    def emit(self, event) -> None:
        with self._lock:
            super().emit(event)


_EOS = "eos"
_CHUNK = "chunk"


class ChipSession:
    """One chip's server-side monitoring session.

    An :class:`~repro.runtime.pipeline.EscalationPipeline` behind a
    bounded ``asyncio.Queue``, drained by one consumer task that
    hands chunks to the service's analysis pool.  All queue-side
    state (counters, shed bookkeeping) lives on the event loop
    thread; pipeline state is touched only under :attr:`_plock` from
    pool threads.
    """

    def __init__(
        self,
        service: "MonitorService",
        chip_id: str,
        kind: str,
        n_streams: int,
        trigger_index: Optional[int] = None,
        pipeline: Optional[EscalationPipeline] = None,
        render_locked: bool = False,
    ):
        self.service = service
        self.chip_id = chip_id
        self.kind = kind
        self.n_streams = n_streams
        self.trigger_index = trigger_index
        self.render_locked = render_locked
        self.pipeline = pipeline or EscalationPipeline(
            service.sim_config,
            n_streams=n_streams,
            pipeline=service.tuning,
            localizer=None,
            bus=service.bus,
            chip=chip_id,
        )
        self.queue: asyncio.Queue = asyncio.Queue(
            maxsize=service.config.queue_depth
        )
        self.windows = 0
        self.queued_windows = 0
        self.sheds = 0
        self.dropped_windows = 0
        self.done = asyncio.Event()
        self.report: Optional[MonitorReport] = None
        self.error: Optional[str] = None
        self._plock = threading.Lock()
        self.consumer = asyncio.create_task(self._consume())

    # -- ingress (event loop thread) --------------------------------------

    def _rebased(self, chunk):
        """Shift a chunk's start down by the windows shed before it."""
        if not self.dropped_windows:
            return chunk
        return replace(chunk, start=chunk.start - self.dropped_windows)

    def offer(self, chunk) -> Tuple[bool, Optional[str]]:
        """Fire-and-forget ingress (WebSocket push): admit or shed."""
        reason = self.service.shedder.should_shed(
            self.queue.qsize(), self.service.config.queue_depth
        )
        if reason is not None:
            self.sheds += 1
            self.dropped_windows += chunk.n_windows
            self.service.shedder.announce(
                self.chip_id,
                chunk.start,
                chunk.n_windows,
                reason,
                self.queue.qsize(),
                self.service.config.queue_depth,
                self.service.uptime(),
            )
            return False, reason
        self._admit(chunk)
        return True, None

    async def put(self, chunk) -> None:
        """Flow-controlled ingress (HTTP upload): wait at the bound."""
        adjusted = self._rebased(chunk)
        await self.queue.put((_CHUNK, adjusted, None))
        self._note_admitted(adjusted)

    def _admit(self, chunk) -> None:
        adjusted = self._rebased(chunk)
        self.queue.put_nowait((_CHUNK, adjusted, None))
        self._note_admitted(adjusted)

    def _note_admitted(self, chunk) -> None:
        self.queued_windows += chunk.n_windows
        self.service.guard.note_enqueued(
            chunk.n_windows, self.service.uptime()
        )

    async def drain(
        self, trigger_index: Optional[int] = None
    ) -> MonitorReport:
        """Finalize: process everything queued, snapshot the report."""
        if trigger_index is not None:
            self.trigger_index = trigger_index
        flushed = asyncio.Event()
        await self.queue.put((_EOS, self.trigger_index, flushed))
        await flushed.wait()
        if self.error is not None:
            raise AnalysisError(
                f"chip {self.chip_id} session failed: {self.error}"
            )
        return self.report

    # -- analysis (consumer task + pool threads) --------------------------

    def _process(self, chunk) -> None:
        """Run one chunk through the pipeline (pool thread)."""
        if self.render_locked:
            with self.service.render_lock:
                with self._plock:
                    self.pipeline.process_chunk(chunk)
        else:
            with self._plock:
                self.pipeline.process_chunk(chunk)

    def snapshot_report(
        self, trigger_index: Optional[int] = None
    ) -> MonitorReport:
        """The session report so far (safe against in-flight chunks)."""
        with self._plock:
            return self.pipeline.report(
                trigger_index=(
                    self.trigger_index
                    if trigger_index is None
                    else trigger_index
                )
            )

    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            kind, payload, flushed = await self.queue.get()
            try:
                if kind == _EOS:
                    self.report = await loop.run_in_executor(
                        self.service.executor,
                        partial(self.snapshot_report, payload),
                    )
                    self.done.set()
                    continue
                if self.service.config.drill_delay_s > 0:
                    await asyncio.sleep(self.service.config.drill_delay_s)
                try:
                    await loop.run_in_executor(
                        self.service.executor, partial(self._process, payload)
                    )
                    self.windows += payload.n_windows
                    self.service.meter.record(payload.n_windows)
                except ReproError as exc:
                    self.error = str(exc)
                    logger.warning(
                        "chip %s: chunk rejected: %s", self.chip_id, exc
                    )
                finally:
                    self.queued_windows -= payload.n_windows
                    self.service.guard.note_dequeued(
                        payload.n_windows, self.service.uptime()
                    )
            finally:
                if flushed is not None:
                    flushed.set()
                self.queue.task_done()

    def gauge(self) -> ChipGauge:
        """This session's ``/metrics`` row."""
        report = self.report
        mttd_ms = None
        if report is not None and report.mttd and report.mttd.mttd_s:
            mttd_ms = round(1e3 * report.mttd.mttd_s, 3)
        return ChipGauge(
            chip=self.chip_id,
            kind=self.kind,
            state=self.pipeline.state.value,
            windows=self.windows,
            queue_len=self.queue.qsize(),
            queued_windows=self.queued_windows,
            sheds=self.sheds,
            dropped_windows=self.dropped_windows,
            alarms=self.service.alarm_count(self.chip_id),
            first_alarm=self.service.first_alarm(self.chip_id),
            mttd_ms=mttd_ms,
            done=self.done.is_set(),
        )

    async def close(self) -> None:
        """Cancel the consumer task (service shutdown)."""
        self.consumer.cancel()
        try:
            await self.consumer
        except asyncio.CancelledError:
            pass


class MonitorService:
    """The serve application: sessions, routing, metrics, shedding.

    Parameters
    ----------
    config:
        Service tuning.
    sim_config:
        Simulation config backing onboarded pipelines (feature
        bookkeeping, timing; live chips render through it).
    store:
        Optional :class:`~repro.store.ArtifactStore` — live chips
        warm-start their activity records from it, and its counters
        surface in ``/metrics``.
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        sim_config: Optional[SimConfig] = None,
        store: Optional[ArtifactStore] = None,
    ):
        self.config = config or ServeConfig()
        self.sim_config = sim_config or SimConfig()
        self.store = store
        self.preset = build_preset(self.config.preset)
        tuning = self.preset.pipeline_config()
        if self.config.detector is not None:
            tuning = replace(tuning, detector_name=self.config.detector)
        self.tuning = tuning
        self.bus: EventBus = _LockedBus()
        self._sink: Optional[JsonlSink] = None
        if self.config.events_path is not None:
            self._sink = JsonlSink(self.config.events_path)
            self.bus.subscribe(self._sink)
        self.meter = ThroughputMeter()
        self.guard = OverloadGuard(self.bus, self.config.high_water_windows)
        self.shedder = ChunkShedder(self.bus, self.guard)
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.analysis_workers,
            thread_name_prefix="serve-analysis",
        )
        self.render_lock = threading.Lock()
        self.sessions: Dict[str, ChipSession] = {}
        self._alarms: Dict[str, int] = {}
        self._first_alarms: Dict[str, int] = {}
        self.bus.subscribe(self._on_event)
        self._uploads = tempfile.TemporaryDirectory(prefix="repro-serve-")
        self._producers: List[asyncio.Task] = []
        self._conn_tasks: set = set()
        self._started = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self.port: Optional[int] = None

    # -- bookkeeping ------------------------------------------------------

    def uptime(self) -> float:
        """Seconds since the service object was created."""
        return time.monotonic() - self._started

    def _on_event(self, event) -> None:
        if isinstance(event, Alarm):
            self._alarms[event.chip] = self._alarms.get(event.chip, 0) + 1
            self._first_alarms.setdefault(event.chip, event.window)

    def alarm_count(self, chip_id: str) -> int:
        """Alarm events one chip has emitted."""
        return self._alarms.get(chip_id, 0)

    def first_alarm(self, chip_id: str) -> Optional[int]:
        """One chip's first alarming window (None = silent)."""
        return self._first_alarms.get(chip_id)

    def metrics(self) -> MetricsSnapshot:
        """The ``/metrics`` snapshot, assembled on the loop thread."""
        store = None
        if self.store is not None:
            store = {
                "hits": self.store.hits,
                "misses": self.store.misses,
                "writes": self.store.writes,
            }
        return MetricsSnapshot(
            uptime_s=self.uptime(),
            n_chips=len(self.sessions),
            windows_total=self.meter.total,
            windows_per_sec=self.meter.rate(),
            recent_windows_per_sec=self.meter.recent_rate(),
            alarms_total=self.bus.counts.get("Alarm", 0),
            sheds_total=self.shedder.sheds,
            backpressure_total=self.bus.counts.get("Backpressure", 0),
            overload_active=self.guard.active,
            queued_windows=self.guard.queued_windows,
            high_water_windows=self.guard.high_water,
            event_counts=dict(self.bus.counts),
            chips=tuple(
                session.gauge() for session in self.sessions.values()
            ),
            engine_sessions=tuple(backend_session_stats()),
            store=store,
        )

    def _check_onboarding(self, chip_id: str) -> None:
        """Reject bad/duplicate chip ids before any expensive work.

        Also the path-safety gate: the id becomes an upload file name,
        so it must stay a single plain path segment.
        """
        if not _CHIP_ID.match(chip_id):
            raise AnalysisError(
                f"invalid chip id {chip_id!r}; expected 1-64 characters "
                "from [A-Za-z0-9._-]"
            )
        if chip_id in self.sessions:
            raise AnalysisError(f"chip {chip_id!r} is already onboarded")
        if len(self.sessions) >= self.config.max_chips:
            raise AnalysisError(
                f"service is at its {self.config.max_chips}-chip bound"
            )

    def _new_session(self, chip_id: str, **kwargs) -> ChipSession:
        self._check_onboarding(chip_id)
        session = ChipSession(self, chip_id, **kwargs)
        self.sessions[chip_id] = session
        return session

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (port 0 resolves to the chosen port)."""
        self._stop_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: listener, producers, sessions, pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._producers) + list(self._conn_tasks):
            task.cancel()
        for task in list(self._producers) + list(self._conn_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._producers.clear()
        self._conn_tasks.clear()
        for session in self.sessions.values():
            await session.close()
        self.executor.shutdown(wait=True)
        if self._sink is not None:
            self._sink.close()
        self._uploads.cleanup()

    async def serve_forever(self, on_ready=None) -> None:
        """Run until ``POST /shutdown`` (or cancellation).

        ``on_ready(service)`` is called once the listener is bound —
        the CLI prints the resolved address through it.
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_requested.wait()
        finally:
            await self.stop()

    # -- connection handling ----------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(
                        json_response(
                            400, {"error": str(exc)}, keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                if request.wants_websocket:
                    await self._handle_ws(request, reader, writer)
                    break
                response = await self._dispatch(request)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Service shutdown cancels live connections; ending the
            # handler normally keeps asyncio's stream-protocol done
            # callback from logging the cancellation as an error.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: HttpRequest) -> bytes:
        parts = [p for p in request.path.split("/") if p]
        try:
            if request.method == "GET":
                if parts == ["healthz"]:
                    return json_response(
                        200, {"ok": True, "uptime_s": self.uptime()}
                    )
                if parts == ["metrics"]:
                    return json_response(200, self.metrics().to_dict())
                if parts == ["chips"]:
                    return json_response(
                        200,
                        {
                            "chips": [
                                s.gauge().to_dict()
                                for s in self.sessions.values()
                            ]
                        },
                    )
                if len(parts) == 3 and parts[0] == "chips":
                    return await self._get_chip(parts[1], parts[2])
            elif request.method == "POST":
                if parts == ["shutdown"]:
                    self._stop_requested.set()
                    return json_response(
                        200, {"ok": True}, keep_alive=False
                    )
                if len(parts) == 3 and parts[0] == "chips":
                    if parts[2] == "replay":
                        return await self._post_replay(parts[1], request)
                    if parts[2] == "live":
                        return await self._post_live(parts[1], request)
                return json_response(
                    404, {"error": f"no route for {request.path}"}
                )
            else:
                return json_response(
                    405, {"error": f"method {request.method} not allowed"}
                )
        except ReproError as exc:
            status = 409 if "already onboarded" in str(exc) else 400
            return json_response(status, {"error": str(exc)})
        except Exception as exc:  # a handler bug must not kill the socket
            logger.exception("unhandled error serving %s", request.path)
            return json_response(500, {"error": str(exc)})
        return json_response(
            404, {"error": f"no route for {request.path}"}
        )

    async def _get_chip(self, chip_id: str, leaf: str) -> bytes:
        session = self.sessions.get(chip_id)
        if session is None:
            return json_response(
                404, {"error": f"unknown chip {chip_id!r}"}
            )
        if leaf != "report":
            return json_response(404, {"error": f"no route for {leaf!r}"})
        if session.done.is_set() and session.report is not None:
            report = session.report
        else:
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(
                self.executor, session.snapshot_report
            )
        return json_response(200, report.to_dict())

    # -- replay upload (flow-controlled HTTP ingress) ---------------------

    async def _post_replay(
        self, chip_id: str, request: HttpRequest
    ) -> bytes:
        self._check_onboarding(chip_id)
        if not request.body:
            raise AnalysisError("replay upload needs a .npz archive body")
        loop = asyncio.get_running_loop()
        path = Path(self._uploads.name) / f"{chip_id}.npz"
        path.write_bytes(request.body)
        batch = int(
            request.query.get("batch", str(self.config.chunk_windows))
        )
        try:
            source = await loop.run_in_executor(
                self.executor, partial(ReplaySource, path, batch)
            )
        except (ValueError, OSError, KeyError) as exc:
            raise AnalysisError(
                f"replay upload is not a readable trace archive: {exc}"
            ) from exc
        session = self._new_session(
            chip_id,
            kind="replay",
            n_streams=source.n_streams,
            trigger_index=source.trigger_index,
        )
        iterator = source.chunks()
        while True:
            chunk = await loop.run_in_executor(
                self.executor, partial(next, iterator, None)
            )
            if chunk is None:
                break
            await session.put(chunk)
        report = await session.drain(source.trigger_index)
        return json_response(200, report.to_dict())

    # -- live onboarding (server-side rendering) --------------------------

    async def _post_live(self, chip_id: str, request: HttpRequest) -> bytes:
        body = json.loads(request.body.decode("utf-8") or "{}")
        loop = asyncio.get_running_loop()
        base = self.preset.specs(1, base_seed=self.sim_config.seed)[0]
        spec = replace(
            base,
            chip_id=chip_id,
            trojan=str(body.get("trojan", base.trojan)),
            seed=int(body.get("seed", base.seed)),
        )
        self._check_onboarding(chip_id)
        monitor = await loop.run_in_executor(
            self.executor,
            partial(
                build_chip_monitor,
                spec,
                config=self.sim_config,
                pipeline_config=self.tuning,
                bus=self.bus,
                store=self.store,
            ),
        )
        warm = 0
        if self.store is not None:
            warm = await loop.run_in_executor(
                self.executor, self._render_call, monitor.source.warm_records
            )
        monitor.pipeline.bind(monitor.source)
        session = self._new_session(
            chip_id,
            kind="live",
            n_streams=monitor.source.n_streams,
            trigger_index=monitor.source.trigger_index,
            pipeline=monitor.pipeline,
            render_locked=True,
        )
        self._producers.append(
            asyncio.create_task(self._produce_live(session, monitor))
        )
        return json_response(
            200,
            {
                "chip": chip_id,
                "kind": "live",
                "trojan": spec.trojan,
                "windows_scheduled": monitor.source.n_windows,
                "trigger_index": monitor.source.trigger_index,
                "warm_records": warm,
            },
        )

    def _render_call(self, fn):
        """Run an engine-rendering callable under the render lock."""
        with self.render_lock:
            return fn()

    async def _produce_live(self, session: ChipSession, monitor) -> None:
        loop = asyncio.get_running_loop()
        iterator = monitor.source.chunks()
        while True:
            chunk = await loop.run_in_executor(
                self.executor,
                partial(self._render_call, partial(next, iterator, None)),
            )
            if chunk is None:
                break
            await session.put(chunk)
        await session.drain(monitor.source.trigger_index)

    # -- websocket streaming (push ingress with shedding) -----------------

    async def _handle_ws(self, request: HttpRequest, reader, writer) -> None:
        parts = [p for p in request.path.split("/") if p]
        if len(parts) != 3 or parts[0] != "chips" or parts[2] != "ws":
            writer.write(
                json_response(
                    404,
                    {"error": f"no websocket route for {request.path}"},
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        chip_id = parts[1]
        writer.write(websocket_handshake_bytes(request))
        await writer.drain()

        async def send_json(payload: object) -> None:
            writer.write(
                ws_frame(
                    json.dumps(payload).encode("utf-8"), opcode=WS_TEXT
                )
            )
            await writer.drain()

        session: Optional[ChipSession] = None
        while True:
            try:
                frame = await read_ws_frame(reader)
            except (ProtocolError, asyncio.IncompleteReadError):
                break
            if frame is None:
                break
            opcode, payload = frame
            if opcode == WS_CLOSE:
                writer.write(ws_frame(b"", opcode=WS_CLOSE))
                await writer.drain()
                break
            if opcode == WS_PING:
                writer.write(ws_frame(payload, opcode=WS_PONG))
                await writer.drain()
                continue
            try:
                if opcode == WS_TEXT:
                    message = json.loads(payload.decode("utf-8"))
                    op = message.get("op")
                    if op == "hello":
                        if session is not None:
                            raise AnalysisError(
                                "session already established on this socket"
                            )
                        session = self._new_session(
                            chip_id,
                            kind="ws",
                            n_streams=int(message.get("n_streams", 1)),
                            trigger_index=message.get("trigger_index"),
                        )
                        await send_json({"op": "hello", "chip": chip_id})
                    elif op == "end":
                        if session is None:
                            raise AnalysisError("end before hello")
                        report = await session.drain(
                            message.get("trigger_index")
                        )
                        await send_json(
                            {"op": "report", "report": report.to_dict()}
                        )
                    elif op == "metrics":
                        await send_json(
                            {
                                "op": "metrics",
                                "metrics": self.metrics().to_dict(),
                            }
                        )
                    else:
                        raise AnalysisError(f"unknown ws op {op!r}")
                elif opcode == WS_BINARY:
                    if session is None:
                        raise AnalysisError("chunk before hello")
                    chunk = unpack_chunk(payload)
                    accepted, reason = session.offer(chunk)
                    await send_json(
                        {
                            "op": "ack",
                            "window_start": chunk.start,
                            "n_windows": chunk.n_windows,
                            "accepted": accepted,
                            "shed_reason": reason,
                            "queued_windows": session.queued_windows,
                        }
                    )
            except ReproError as exc:
                await send_json({"op": "error", "error": str(exc)})


class ServiceRunner:
    """Run a :class:`MonitorService` on a background thread.

    Context manager used by the tests, the benchmark and
    ``repro serve --selftest``: the service's event loop lives on a
    daemon thread, the ``with`` body drives it through the blocking
    :class:`~repro.serve.protocol.ServeClient`.
    """

    def __init__(self, service: MonitorService):
        self.service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.service.start())
        except BaseException as exc:  # surface bind failures to __enter__
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        self._loop.run_forever()

    def __enter__(self) -> "ServiceRunner":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise AnalysisError("serve runner failed to start in 60 s")
        if self._error is not None:
            raise AnalysisError(f"serve runner failed: {self._error}")
        return self

    def __exit__(self, *exc_info) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(), self._loop
        )
        try:
            future.result(timeout=60)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=60)
            self._loop.close()

    @property
    def port(self) -> int:
        """The bound port."""
        return int(self.service.port)

    def client(self, timeout: float = 60.0):
        """A blocking client bound to this instance."""
        from .protocol import ServeClient

        return ServeClient(
            self.service.config.host, self.port, timeout=timeout
        )
