"""Dipole field physics."""

import numpy as np
import pytest

from repro.em.dipole import (
    analytic_centered_flux,
    bz_unit_dipole,
    flux_through_patches,
)
from repro.em.loops import (
    loop_flux_factor,
    rect_patches,
    rect_perimeter,
    surface_flux_factor,
    turns_flux_factor,
)
from repro.chip.floorplan import Rect
from repro.errors import ConfigError
from repro.units import MU0, UM


def test_on_axis_field_positive_and_decaying():
    dipole = np.array([[0.0, 0.0]])
    points = np.array([[0.0, 0.0]])
    near = bz_unit_dipole(dipole, 0.0, points, 10 * UM)[0, 0]
    far = bz_unit_dipole(dipole, 0.0, points, 20 * UM)[0, 0]
    assert near > far > 0.0
    # On-axis: Bz = mu0 m / (2 pi z^3).
    expected = MU0 / (2 * np.pi * (10 * UM) ** 3)
    assert near == pytest.approx(expected, rel=1e-9)


def test_field_changes_sign_off_axis():
    """Bz flips sign beyond the sqrt(2)*z radius (flux returns)."""
    dipole = np.array([[0.0, 0.0]])
    z = 10 * UM
    inside = bz_unit_dipole(dipole, 0.0, np.array([[5 * UM, 0.0]]), z)[0, 0]
    outside = bz_unit_dipole(dipole, 0.0, np.array([[50 * UM, 0.0]]), z)[0, 0]
    assert inside > 0.0
    assert outside < 0.0


def test_coincident_planes_rejected():
    with pytest.raises(ConfigError):
        bz_unit_dipole(np.array([[0.0, 0.0]]), 0.0, np.array([[1.0, 1.0]]), 0.0)


def test_line_integral_matches_surface_integral():
    """Vector-potential and patch fluxes agree away from the core."""
    rect = Rect(-200 * UM, -200 * UM, 200 * UM, 200 * UM)
    dipole = np.array([[35 * UM, -20 * UM]])
    z = 60 * UM  # high enough for the patch integral to converge
    line = loop_flux_factor(rect, z, dipole, 0.0, points_per_side=256)[0]
    surface = surface_flux_factor(rect, z, dipole, 0.0, n_side=256)[0]
    assert line == pytest.approx(surface, rel=0.01)


def test_line_integral_matches_analytic_centered_disk():
    """Square-loop flux ~ equal-area circle flux for a centered dipole."""
    z = 5 * UM
    side = 400 * UM
    rect = Rect(-side / 2, -side / 2, side / 2, side / 2)
    flux = loop_flux_factor(rect, z, np.array([[0.0, 0.0]]), 0.0, 256)[0]
    radius = side / np.sqrt(np.pi)  # equal-area circle
    expected = analytic_centered_flux(radius, z)
    assert flux == pytest.approx(expected, rel=0.1)


def test_flux_decays_with_loop_size():
    """Self-cancellation: a centered dipole links less flux through a
    bigger loop (the single-coil penalty)."""
    z = 5 * UM
    dipole = np.array([[0.0, 0.0]])
    fluxes = []
    for side in (100 * UM, 300 * UM, 900 * UM):
        rect = Rect(-side / 2, -side / 2, side / 2, side / 2)
        fluxes.append(loop_flux_factor(rect, z, dipole, 0.0, 128)[0])
    assert fluxes[0] > fluxes[1] > fluxes[2] > 0.0


def test_dipole_outside_loop_links_negative_flux():
    rect = Rect(0.0, 0.0, 100 * UM, 100 * UM)
    outside = np.array([[150 * UM, 50 * UM]])
    flux = loop_flux_factor(rect, 5 * UM, outside, 0.0, 128)[0]
    assert flux < 0.0


def test_turns_sum_linearly():
    turn_a = Rect(0.0, 0.0, 100 * UM, 100 * UM)
    turn_b = Rect(10 * UM, 10 * UM, 90 * UM, 90 * UM)
    dipole = np.array([[50 * UM, 50 * UM]])
    combined = turns_flux_factor([turn_a, turn_b], 5 * UM, dipole, 0.0)[0]
    separate = (
        loop_flux_factor(turn_a, 5 * UM, dipole, 0.0)[0]
        + loop_flux_factor(turn_b, 5 * UM, dipole, 0.0)[0]
    )
    assert combined == pytest.approx(separate, rel=1e-12)


def test_rect_perimeter_closes():
    rect = Rect(0.0, 0.0, 2.0, 1.0)
    midpoints, deltas = rect_perimeter(rect, 16)
    assert midpoints.shape == deltas.shape == (64, 2)
    # A closed path's segment vectors sum to zero.
    assert np.allclose(deltas.sum(axis=0), 0.0, atol=1e-12)
    # Total length equals the perimeter.
    assert np.linalg.norm(deltas, axis=1).sum() == pytest.approx(6.0)


def test_rect_patches_tile_area():
    rect = Rect(0.0, 0.0, 3.0, 2.0)
    centers, area = rect_patches(rect, 6)
    assert centers.shape == (36, 2)
    assert 36 * area == pytest.approx(rect.area)


def test_flux_through_patches_signs():
    dipole = np.array([[0.0, 0.0]])
    patches, area = rect_patches(
        Rect(-5 * UM, -5 * UM, 5 * UM, 5 * UM), 8
    )
    flux = flux_through_patches(dipole, 0.0, patches, 10 * UM, area)
    assert flux[0] > 0.0
