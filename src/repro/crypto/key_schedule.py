"""AES-128 key schedule."""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigError
from .sbox import SBOX, gf_mul


def _rcon(round_index: int) -> int:
    """Round constant for round 1..10."""
    value = 1
    for _ in range(round_index - 1):
        value = gf_mul(value, 2)
    return value


def expand_key(key: bytes) -> List[np.ndarray]:
    """Expand a 16-byte key into 11 round keys.

    Returns a list of 11 arrays of shape (16,), dtype uint8, in the
    byte order produced by the standard column-major AES word schedule.

    Raises
    ------
    ConfigError
        If the key is not exactly 16 bytes.
    """
    if len(key) != 16:
        raise ConfigError(f"AES-128 key must be 16 bytes, got {len(key)}")
    words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]  # RotWord
            temp = [int(SBOX[b]) for b in temp]  # SubWord
            temp[0] ^= _rcon(i // 4)
        words.append([t ^ w for t, w in zip(temp, words[i - 4])])
    round_keys = []
    for round_index in range(11):
        flat = [
            byte
            for word in words[4 * round_index : 4 * round_index + 4]
            for byte in word
        ]
        round_keys.append(np.array(flat, dtype=np.uint8))
    return round_keys
