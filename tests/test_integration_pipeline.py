"""End-to-end cross-domain analysis (the paper's headline flow)."""

import pytest

from repro.core.analysis.pipeline import CrossDomainAnalyzer
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def analyzer(chip, psa):
    return CrossDomainAnalyzer(chip, psa)


@pytest.fixture(scope="module")
def t1_report(analyzer):
    return analyzer.run("T1", n_baseline=7, n_active=4)


def test_detection_within_paper_budget(t1_report):
    """<10 traces, <10 ms MTTD (Section VI-D)."""
    assert t1_report.mttd.detected
    assert t1_report.mttd.traces_to_detect < 10
    assert t1_report.mttd.mttd_s < 10e-3


def test_prominent_components_at_48_and_84_mhz(t1_report):
    freqs = sorted(freq for freq, _ in t1_report.prominent_components)
    assert freqs[0] == pytest.approx(48e6, abs=1e6)
    assert freqs[1] == pytest.approx(84e6, abs=1e6)


def test_localization_names_sensor10(t1_report):
    assert t1_report.localization.sensor_index == 10
    assert t1_report.localization.quadrant == "nw"


def test_identification_names_t1(t1_report):
    assert t1_report.identification.label == "T1"


def test_monitor_sensor_recorded(t1_report):
    assert t1_report.monitor_sensor == 10
    assert t1_report.scenario == "T1"


def test_t3_smallest_trojan_detected(analyzer):
    """The 329-cell T3 defeats the prior methods but not the PSA."""
    report = analyzer.run(
        "T3", n_baseline=7, n_active=4, refine_localization=False
    )
    assert report.mttd.detected
    assert report.mttd.traces_to_detect < 10
    assert report.localization.sensor_index == 10
    assert report.identification.label == "T3"


def test_idle_scenario_rejected(analyzer):
    with pytest.raises(AnalysisError):
        analyzer.run("idle")
    with pytest.raises(AnalysisError):
        analyzer.run("baseline")
