"""ASCII visualization of the die, floorplan and sensor layout.

Text renderings used by the examples and handy for debugging floorplan
changes — a poor man's amoeba view (Figure 2).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .chip.floorplan import DIE_SIZE, Floorplan, Rect, sensor_rect
from .errors import FloorplanError

#: Drawing priority (later entries overwrite earlier ones).
_MODULE_GLYPHS = [
    ("clock_tree", "."),
    ("io_ring", "o"),
    ("aes_sbox_bank", "s"),
    ("aes_mixcolumns", "m"),
    ("aes_addroundkey", "a"),
    ("aes_state_regs", "r"),
    ("aes_key_expand", "k"),
    ("aes_round_ctrl", "c"),
    ("uart_core", "u"),
    ("uart_fifo", "U"),
    ("psa_control", "p"),
    ("T1", "1"),
    ("T2", "2"),
    ("T3", "3"),
    ("T4", "4"),
]


def floorplan_map(
    floorplan: Floorplan, width: int = 64, height: int = 32
) -> str:
    """Render the module placement as an ASCII map (y up)."""
    if width < 8 or height < 8:
        raise FloorplanError("map needs at least 8x8 characters")
    canvas = np.full((height, width), " ", dtype="<U1")
    for module, glyph in _MODULE_GLYPHS:
        if module not in floorplan.placements:
            continue
        for rect in floorplan.placements[module]:
            _paint(canvas, rect, glyph, floorplan.die_size)
    rows = ["".join(canvas[row]) for row in range(height - 1, -1, -1)]
    legend = "  ".join(
        f"{glyph}={module}"
        for module, glyph in _MODULE_GLYPHS
        if module in floorplan.placements
    )
    return "\n".join(rows) + "\n" + legend


def sensor_overlay(
    highlight: Sequence[int] = (),
    width: int = 64,
    height: int = 32,
) -> str:
    """Render the 16 sensor footprints; highlighted ones use '#'."""
    canvas = np.full((height, width), " ", dtype="<U1")
    for index in range(16):
        rect = sensor_rect(index)
        glyph = "#" if index in highlight else "+"
        _outline(canvas, rect, glyph, DIE_SIZE)
    rows = ["".join(canvas[row]) for row in range(height - 1, -1, -1)]
    return "\n".join(rows)


def score_heatmap(scores: np.ndarray) -> str:
    """Render a 16-sensor score map as a 4x4 heat grid."""
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (16,):
        raise FloorplanError("score map must have 16 entries")
    glyphs = " .:-=+*#%@"
    lo, hi = float(scores.min()), float(scores.max())
    span = (hi - lo) or 1.0
    lines = []
    for row in range(4):
        cells = []
        for col in range(4):
            value = scores[row * 4 + col]
            level = int((value - lo) / span * (len(glyphs) - 1))
            cells.append(glyphs[level] * 3)
        lines.append(" ".join(cells))
    return "\n".join(lines)


def _to_cells(
    rect: Rect, die: float, width: int, height: int
) -> tuple[int, int, int, int]:
    x0 = int(np.clip(rect.x0 / die * width, 0, width - 1))
    x1 = int(np.clip(np.ceil(rect.x1 / die * width), 1, width))
    y0 = int(np.clip(rect.y0 / die * height, 0, height - 1))
    y1 = int(np.clip(np.ceil(rect.y1 / die * height), 1, height))
    return x0, x1, y0, y1


def _paint(canvas: np.ndarray, rect: Rect, glyph: str, die: float) -> None:
    height, width = canvas.shape
    x0, x1, y0, y1 = _to_cells(rect, die, width, height)
    canvas[y0:y1, x0:x1] = glyph


def _outline(canvas: np.ndarray, rect: Rect, glyph: str, die: float) -> None:
    height, width = canvas.shape
    x0, x1, y0, y1 = _to_cells(rect, die, width, height)
    canvas[y0, x0:x1] = glyph
    canvas[y1 - 1, x0:x1] = glyph
    canvas[y0:y1, x0] = glyph
    canvas[y0:y1, x1 - 1] = glyph
