"""The content-addressed on-disk artifact store.

:class:`ArtifactStore` persists the expensive intermediates of the
reproduction — chip activity records, featurized trace spans — keyed
by a SHA-256 content address of their full simulation provenance (see
:mod:`repro.store.keys`).  Identical inputs always map to the same
key, so any consumer that renders through the store warm-starts
bit-identically: a second detection sweep, localize sweep or monitor
session replays its artifacts from disk instead of re-simulating.

Design points
-------------
* **Layout** — ``root/objects/<kind>/<hh>/<digest>.npz`` plus a
  ``store.json`` schema marker.  Every object is a plain ``.npz`` with
  an embedded JSON header (the :mod:`repro.traceio` idiom), loadable
  with ``allow_pickle=False``.
* **Atomicity** — objects are written to a temp file and published
  with :func:`os.replace`, so concurrent writers (a fleet of
  monitors, parallel CI jobs) can never expose a partial entry.
  Writers racing on the same key produce identical content
  (determinism), so last-replace-wins is harmless.
* **Corruption policy** — any entry that fails to load (truncated
  file, bad header, schema/kind mismatch, codec error) is *evicted,
  never served*: the reader unlinks it and reports a miss.
* **LRU size cap** — reads touch the entry's mtime; :meth:`gc`
  deletes oldest-first until the store fits ``max_bytes``.  Puts
  trigger an opportunistic gc once the cap is exceeded.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from collections.abc import MutableMapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..chip.power import ActivityRecord
from ..config import SimConfig
from ..errors import StoreError
from .keys import CODE_VERSION, KEY_SCHEMA, canonical, digest

#: On-disk object schema; bump to invalidate every stored entry.
SCHEMA_VERSION = 1

#: Default LRU size cap [bytes].
DEFAULT_MAX_BYTES = 2 * 1024**3

#: Environment variable overriding the default store root.
ENV_STORE_DIR = "REPRO_STORE_DIR"

_MARKER_NAME = "store.json"

#: Process-wide temp-file counter: combined with the pid and thread
#: id it makes every in-flight write's temp name unique, even across
#: store handles sharing one directory.
_TMP_COUNTER = itertools.count()


def default_store_root() -> Path:
    """The store root: ``$REPRO_STORE_DIR``, else the user cache dir."""
    env = os.environ.get(ENV_STORE_DIR)
    if env:
        return Path(env).expanduser()
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home).expanduser() if cache_home else (
        Path.home() / ".cache"
    )
    return base / "psa-em-repro" / "store"


@dataclass
class StoreStats:
    """Snapshot of one store's contents plus this process's counters.

    Attributes
    ----------
    root:
        Store root directory.
    entries, total_bytes:
        On-disk object count and summed size.
    by_kind:
        ``{kind: (entries, bytes)}`` breakdown.
    max_bytes:
        Configured LRU cap.
    hits, misses, writes, evictions, corrupt_evictions:
        Process-local counters since this handle was opened.
    """

    root: str
    entries: int
    total_bytes: int
    by_kind: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    max_bytes: int = DEFAULT_MAX_BYTES
    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt_evictions: int = 0

    def format(self) -> str:
        """Human-readable stats table."""
        lines = [
            f"store: {self.root}",
            f"  entries: {self.entries} "
            f"({self.total_bytes / 1e6:.1f} MB of "
            f"{self.max_bytes / 1e6:.0f} MB cap)",
        ]
        for kind in sorted(self.by_kind):
            count, size = self.by_kind[kind]
            lines.append(f"  {kind}: {count} entries, {size / 1e6:.1f} MB")
        lines.append(
            f"  session: {self.hits} hits, {self.misses} misses, "
            f"{self.writes} writes, {self.evictions} evicted "
            f"({self.corrupt_evictions} corrupt)"
        )
        return "\n".join(lines)


class ArtifactStore:
    """Content-addressed artifact store rooted at one directory.

    Parameters
    ----------
    root:
        Store directory (created on demand).  None resolves
        ``$REPRO_STORE_DIR``, falling back to the user cache dir.
    max_bytes:
        LRU size cap enforced by :meth:`gc` and opportunistically
        after writes.
    """

    def __init__(
        self,
        root: "str | Path | None" = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if max_bytes < 1:
            raise StoreError(f"max_bytes must be >= 1, got {max_bytes}")
        self.root = Path(root).expanduser() if root else default_store_root()
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.corrupt_evictions = 0
        self._lock = threading.Lock()
        self._approx_bytes: Optional[int] = None
        self._check_marker()

    # -- layout ----------------------------------------------------------------

    @property
    def _objects(self) -> Path:
        return self.root / "objects"

    def _path(self, kind: str, key: str) -> Path:
        if not kind or "/" in kind or kind.startswith("."):
            raise StoreError(f"invalid artifact kind {kind!r}")
        return self._objects / kind / key[:2] / f"{key}.npz"

    def _check_marker(self) -> None:
        marker = self.root / _MARKER_NAME
        if marker.exists():
            try:
                header = json.loads(marker.read_text())
                schema = (
                    header.get("schema")
                    if isinstance(header, dict)
                    else None
                )
            except (OSError, ValueError):
                schema = None
            if schema != SCHEMA_VERSION:
                # A different (or unreadable) schema: every entry is
                # stale — drop them rather than mis-serve old
                # payloads, and stamp the current schema so the next
                # handle does not wipe the store again.
                self.clear()
                self._write_marker()
        elif self.root.exists():
            self._write_marker()

    def _write_marker(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / _MARKER_NAME
        tmp = self.root / f".{_MARKER_NAME}.tmp-{os.getpid()}"
        tmp.write_text(json.dumps({"schema": SCHEMA_VERSION}) + "\n")
        os.replace(tmp, marker)

    # -- object I/O ------------------------------------------------------------

    def put(
        self,
        kind: str,
        key: str,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, object],
    ) -> Path:
        """Persist one object atomically; returns the published path.

        ``meta`` must be JSON-serializable; array names must not
        collide with the reserved ``__meta__`` member.
        """
        if "__meta__" in arrays:
            raise StoreError("'__meta__' is a reserved array name")
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if not (self.root / _MARKER_NAME).exists():
            self._write_marker()
        header = {
            "schema": SCHEMA_VERSION,
            "kind": kind,
            "key": key,
            "meta": meta,
        }
        payload = dict(arrays)
        payload["__meta__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        tmp = path.parent / (
            f".tmp-{os.getpid()}-{threading.get_ident()}-"
            f"{next(_TMP_COUNTER)}.npz"
        )
        try:
            with open(tmp, "wb") as handle:
                np.savez_compressed(handle, **payload)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            # A concurrent gc()/clear() already evicted the fresh
            # entry; the write itself succeeded — degrade to a future
            # cache miss instead of failing the producer.
            size = 0
        with self._lock:
            self.writes += 1
            if self._approx_bytes is not None:
                self._approx_bytes += size
        if self._size_estimate() > self.max_bytes:
            self.gc()
        return path

    def get(
        self, kind: str, key: str
    ) -> Optional[Tuple[Dict[str, object], Dict[str, np.ndarray]]]:
        """Load one object; ``(meta, arrays)`` or None on miss.

        A corrupted or mismatched entry is evicted and reported as a
        miss — the store never serves a payload it cannot validate.
        """
        path = self._path(kind, key)
        try:
            with np.load(path, allow_pickle=False) as archive:
                if "__meta__" not in archive:
                    raise StoreError(f"{path} has no object header")
                header = json.loads(
                    bytes(archive["__meta__"]).decode("utf-8")
                )
                if header.get("schema") != SCHEMA_VERSION:
                    raise StoreError(
                        f"unsupported object schema {header.get('schema')!r}"
                    )
                if header.get("kind") != kind:
                    raise StoreError(
                        f"object kind {header.get('kind')!r} != {kind!r}"
                    )
                arrays = {
                    name: archive[name]
                    for name in archive.files
                    if name != "__meta__"
                }
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except Exception:
            # Truncated zip, bad header, wrong schema/kind: evict.
            path.unlink(missing_ok=True)
            with self._lock:
                self.misses += 1
                self.evictions += 1
                self.corrupt_evictions += 1
                self._approx_bytes = None
            return None
        # LRU recency: a hit makes the entry newest.
        try:
            os.utime(path)
        except OSError:
            pass  # racing gc/clear; the loaded payload is still valid
        with self._lock:
            self.hits += 1
        return header.get("meta", {}), arrays

    def contains(self, kind: str, key: str) -> bool:
        """Whether an entry exists on disk (no validation, no touch)."""
        return self._path(kind, key).exists()

    def evict(self, kind: str, key: str) -> bool:
        """Remove one entry; True if something was deleted."""
        path = self._path(kind, key)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        with self._lock:
            self.evictions += 1
            self._approx_bytes = None
        return True

    # -- maintenance -----------------------------------------------------------

    def _scan(self) -> List[Tuple[float, int, Path]]:
        """(mtime, size, path) of every object, tolerant of races."""
        entries = []
        if not self._objects.exists():
            return entries
        for path in self._objects.rglob("*.npz"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                stat = path.stat()
            except FileNotFoundError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def _size_estimate(self) -> int:
        with self._lock:
            if self._approx_bytes is not None:
                return self._approx_bytes
        total = sum(size for _, size, _ in self._scan())
        with self._lock:
            self._approx_bytes = total
        return total

    def gc(self, max_bytes: Optional[int] = None) -> Tuple[int, int]:
        """Evict least-recently-used entries down to the size cap.

        Returns ``(entries_evicted, bytes_freed)``.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap < 0:
            raise StoreError(f"gc cap must be >= 0, got {cap}")
        entries = sorted(self._scan())
        total = sum(size for _, size, _ in entries)
        evicted = 0
        freed = 0
        for mtime, size, path in entries:
            if total - freed <= cap:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            evicted += 1
            freed += size
        with self._lock:
            self.evictions += evicted
            self._approx_bytes = total - freed
        return evicted, freed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for _, _, path in self._scan():
            try:
                path.unlink()
            except FileNotFoundError:
                continue
            removed += 1
        with self._lock:
            self.evictions += removed
            self._approx_bytes = 0
        return removed

    def stats(self) -> StoreStats:
        """Scan the store and snapshot counters."""
        by_kind: Dict[str, Tuple[int, int]] = {}
        total = 0
        count = 0
        for _, size, path in self._scan():
            kind = path.parent.parent.name
            entries, size_sum = by_kind.get(kind, (0, 0))
            by_kind[kind] = (entries + 1, size_sum + size)
            total += size
            count += 1
        with self._lock:
            return StoreStats(
                root=str(self.root),
                entries=count,
                total_bytes=total,
                by_kind=by_kind,
                max_bytes=self.max_bytes,
                hits=self.hits,
                misses=self.misses,
                writes=self.writes,
                evictions=self.evictions,
                corrupt_evictions=self.corrupt_evictions,
            )

    # -- typed views -----------------------------------------------------------

    def mapping(
        self, kind: str, context: Dict[str, object], codec: "Codec"
    ) -> "StoreMapping":
        """A persistent ``MutableMapping`` view bound to one context.

        The view plugs in anywhere the library accepts an in-memory
        memo (``record_cache`` arguments, the sweep feature cache):
        reads fall through memory → disk, writes go to both.
        """
        return StoreMapping(self, kind, context, codec)


class Codec:
    """Encode/decode one value type to/from named arrays + JSON meta."""

    def encode(
        self, value
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        raise NotImplementedError

    def decode(self, meta: Dict[str, object], arrays: Dict[str, np.ndarray]):
        raise NotImplementedError


class StoreMapping(MutableMapping):
    """Dict-compatible store view: memory layer over disk objects.

    Keys are arbitrary canonicalizable items (scenario/index tuples,
    span signatures); each maps to the content address
    ``digest({schema, kind, context, item})``.  Values decoded from
    disk are memoized, so repeated lookups return the *same object* —
    preserving identity-based reuse downstream (e.g. the engine's
    per-record EMF memo).

    ``__iter__``/``__len__`` cover the memory layer only (the store
    has no per-context index); consumers use ``get``/``[]=``, which is
    all the library's memo contracts require.
    """

    def __init__(
        self,
        store: ArtifactStore,
        kind: str,
        context: Dict[str, object],
        codec: Codec,
    ):
        self.store = store
        self.kind = kind
        self.codec = codec
        self._context = canonical(context)
        self._memory: Dict[object, object] = {}

    def address(self, item) -> str:
        """Content address of one item key.

        The library version is part of the material: artifacts
        computed by one release never warm-start another (see
        :data:`repro.store.keys.CODE_VERSION`).
        """
        return digest(
            {
                "schema": KEY_SCHEMA,
                "code": CODE_VERSION,
                "kind": self.kind,
                "context": self._context,
                "item": canonical(item),
            }
        )

    def __getitem__(self, item):
        if item in self._memory:
            return self._memory[item]
        loaded = self.store.get(self.kind, self.address(item))
        if loaded is None:
            raise KeyError(item)
        meta, arrays = loaded
        try:
            value = self.codec.decode(meta, arrays)
        except Exception:
            # Structurally valid object, semantically unusable: evict.
            self.store.evict(self.kind, self.address(item))
            with self.store._lock:
                self.store.corrupt_evictions += 1
            raise KeyError(item) from None
        self._memory[item] = value
        return value

    def __setitem__(self, item, value) -> None:
        self._memory[item] = value
        arrays, meta = self.codec.encode(value)
        self.store.put(self.kind, self.address(item), arrays, meta)

    def __delitem__(self, item) -> None:
        self._memory.pop(item, None)
        if not self.store.evict(self.kind, self.address(item)):
            raise KeyError(item)

    def __iter__(self) -> Iterator:
        return iter(self._memory)

    def __len__(self) -> int:
        return len(self._memory)


# -- codecs -------------------------------------------------------------------


class RecordCodec(Codec):
    """:class:`~repro.chip.power.ActivityRecord` ↔ compact arrays.

    Factor-bearing records (everything the chip simulator produces)
    persist only their low-rank factors; the dense toggle matrices are
    rebuilt on load in the exact accumulation order the simulator used
    — the same bit-for-bit contract as the record's compact pickling.
    Records without factors persist their dense matrices directly.

    Record ``meta`` survives as JSON; top-level tuple values come back
    as tuples (matching how the chip constructs them).
    """

    def __init__(self, config: SimConfig):
        self.config = config

    _GROUPS = ("main", "trojan", "trojan_rising")

    def encode(self, record: ActivityRecord):
        meta: Dict[str, object] = {
            "scenario": record.scenario,
            "record_meta": self._meta_to_json(record.meta),
        }
        arrays: Dict[str, np.ndarray] = {}
        if record.factors is not None:
            meta["format"] = "factors"
            meta["shape"] = [int(dim) for dim in record.main.shape]
            parts: Dict[str, List[str]] = {}
            for group in self._GROUPS:
                names = []
                for position, (name, weights, toggles) in enumerate(
                    record.factors.get(group, ())
                ):
                    names.append(name)
                    arrays[f"{group}.{position}.w"] = np.asarray(
                        weights, dtype=float
                    )
                    arrays[f"{group}.{position}.t"] = np.asarray(
                        toggles, dtype=float
                    )
                if names:
                    parts[group] = names
            meta["parts"] = parts
        else:
            meta["format"] = "dense"
            arrays["main"] = record.main
            arrays["trojan"] = record.trojan
            arrays["trojan_rising"] = record.trojan_rising
        return arrays, meta

    def decode(self, meta, arrays) -> ActivityRecord:
        scenario = str(meta["scenario"])
        record_meta = self._meta_from_json(meta.get("record_meta"))
        if meta.get("format") == "dense":
            return ActivityRecord(
                main=arrays["main"],
                trojan=arrays["trojan"],
                trojan_rising=arrays["trojan_rising"],
                config=self.config,
                scenario=scenario,
                meta=record_meta,
            )
        if meta.get("format") != "factors":
            raise StoreError(f"unknown record format {meta.get('format')!r}")
        shape = tuple(int(dim) for dim in meta["shape"])
        parts = meta.get("parts", {})
        factors: Dict[str, List[Tuple[str, np.ndarray, np.ndarray]]] = {}
        dense: Dict[str, np.ndarray] = {}
        for group in self._GROUPS:
            names = parts.get(group, [])
            group_factors = []
            matrix = np.zeros(shape)
            for position, name in enumerate(names):
                weights = arrays[f"{group}.{position}.w"]
                toggles = arrays[f"{group}.{position}.t"]
                group_factors.append((str(name), weights, toggles))
                # Same accumulation order and operation as the chip
                # simulator / compact unpickling: bit-for-bit dense.
                matrix += np.outer(weights, toggles)
            dense[group] = matrix
            if group_factors:
                factors[group] = group_factors
        return ActivityRecord(
            main=dense["main"],
            trojan=dense["trojan"],
            trojan_rising=dense["trojan_rising"],
            config=self.config,
            scenario=scenario,
            meta=record_meta,
            factors=factors or None,
        )

    @staticmethod
    def _meta_to_json(meta) -> Optional[Dict[str, object]]:
        if meta is None:
            return None
        out = {}
        for key, value in meta.items():
            if isinstance(value, tuple):
                out[key] = {"__tuple__": list(value)}
            else:
                out[key] = value
        return out

    @staticmethod
    def _meta_from_json(meta) -> Optional[Dict[str, object]]:
        if meta is None:
            return None
        out = {}
        for key, value in meta.items():
            if isinstance(value, dict) and "__tuple__" in value:
                out[key] = tuple(value["__tuple__"])
            else:
                out[key] = value
        return out


class ArrayCodec(Codec):
    """Plain ndarray payloads (featurized spans, score maps...)."""

    def __init__(self, readonly: bool = False):
        self.readonly = readonly

    def encode(self, value):
        return {"data": np.asarray(value)}, {"format": "array"}

    def decode(self, meta, arrays) -> np.ndarray:
        if meta.get("format") != "array":
            raise StoreError(f"unknown array format {meta.get('format')!r}")
        data = arrays["data"]
        if self.readonly:
            data.flags.writeable = False
        return data
