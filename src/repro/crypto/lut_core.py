"""Cycle-accurate activity model of the AES-128-LUT core.

The paper's core spends 11 clock cycles per block (one load cycle plus
ten rounds) at 33 MHz, so the block rate is 3 MHz.  Each cycle, the
combinational cone (S-box bank, MixColumns network, AddRoundKey XORs)
and the state registers toggle in proportion to the Hamming distance of
the data moving through them — the standard dynamic-power abstraction.

:class:`AesLutCore` turns a plaintext stream into per-module toggle
counts per cycle; those feed the floorplan/EM model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..config import SimConfig
from ..errors import WorkloadError
from ..netlist.builder import MAIN_MODULE_TOTALS
from .cipher import EncryptionHistory, encrypt_block_with_history
from .key_schedule import expand_key
from .sbox import bit_hamming

#: Cycles per AES block in the LUT core (load + 10 rounds).
BLOCK_CYCLES = 11

#: Toggling cells per unit normalized Hamming activity, per module.
#: Values > 1 reflect glitching in deep XOR cones (MixColumns), < 1
#: reflect partially idle logic.
_ACTIVITY_FACTORS: Dict[str, float] = {
    "aes_sbox_bank": 1.10,
    "aes_key_expand": 0.55,
    "aes_mixcolumns": 1.45,
    "aes_addroundkey": 0.95,
    "aes_state_regs": 0.50,
    "aes_round_ctrl": 0.30,
}

#: Constant per-cycle activity fractions (clocking, control).
_BASELINE_FRACTIONS: Dict[str, float] = {
    "aes_round_ctrl": 0.15,
    "clock_tree": 0.90,
    "uart_core": 0.02,
    "uart_fifo": 0.01,
    "psa_control": 0.01,
    "io_ring": 0.02,
}

#: Clock-tree activity fraction when the core is idle but powered
#: (clock gated at the root; only a residual stub toggles).
_IDLE_CLOCK_FRACTION = 0.004


#: Hamming distance on the per-cycle hot path (popcount lookup).
_hamming = bit_hamming


@dataclass(frozen=True)
class CoreActivity:
    """Per-module toggle counts per cycle.

    Attributes
    ----------
    toggles:
        Mapping from module name to an array of shape ``(n_cycles,)``
        with the expected number of cell output toggles in that cycle.
    histories:
        The encryption histories that generated the activity (one per
        completed block), useful for Trojan models that key off the
        processed data.
    block_of_cycle:
        For each cycle, the block index being processed.
    phase_of_cycle:
        For each cycle, the position within the block (0 = load cycle).
    """

    toggles: Dict[str, np.ndarray]
    histories: List[EncryptionHistory]
    block_of_cycle: np.ndarray
    phase_of_cycle: np.ndarray

    @property
    def n_cycles(self) -> int:
        """Number of simulated cycles."""
        return int(self.block_of_cycle.size)

    def total(self) -> np.ndarray:
        """Summed toggle count across modules, per cycle."""
        return np.sum(list(self.toggles.values()), axis=0)


class AesLutCore:
    """Behavioural AES-128-LUT core with an activity model.

    Parameters
    ----------
    key:
        The 16-byte AES key stored in the core.
    config:
        Simulation configuration (clock, cycles per trace).

    Notes
    -----
    The core encrypts back-to-back: a new block starts every
    ``BLOCK_CYCLES`` cycles, matching the paper's evaluation where the
    chip continuously receives plaintext over UART and streams
    ciphertext back.
    """

    def __init__(self, key: bytes, config: SimConfig):
        if len(key) != 16:
            raise WorkloadError(f"AES-128 key must be 16 bytes, got {len(key)}")
        if config.block_cycles != BLOCK_CYCLES:
            raise WorkloadError(
                f"config.block_cycles={config.block_cycles} does not match "
                f"the LUT core's {BLOCK_CYCLES}-cycle block"
            )
        self.key = bytes(key)
        self.config = config
        # Fixed key => one schedule for every encrypted block.
        self._round_keys = expand_key(self.key)

    # -- public API ----------------------------------------------------------

    def run(self, plaintexts: Sequence[bytes], idle: bool = False) -> CoreActivity:
        """Simulate one trace window.

        Parameters
        ----------
        plaintexts:
            Blocks to encrypt, consumed in order and recycled if the
            window needs more blocks than supplied.
        idle:
            If True the core is powered but not encrypting (the paper's
            noise-measurement condition): only residual clock activity.
        """
        config = self.config
        n_cycles = config.n_cycles
        cycles = np.arange(n_cycles)
        block_of_cycle = cycles // BLOCK_CYCLES
        phase_of_cycle = cycles % BLOCK_CYCLES

        toggles: Dict[str, np.ndarray] = {
            module: np.zeros(n_cycles) for module in MAIN_MODULE_TOTALS
        }

        if idle:
            clock_cells = MAIN_MODULE_TOTALS["clock_tree"]
            toggles["clock_tree"] += clock_cells * _IDLE_CLOCK_FRACTION
            return CoreActivity(
                toggles=toggles,
                histories=[],
                block_of_cycle=block_of_cycle,
                phase_of_cycle=phase_of_cycle,
            )

        if not plaintexts:
            raise WorkloadError("plaintext stream is empty")

        # Constant baseline activity.
        for module, fraction in _BASELINE_FRACTIONS.items():
            toggles[module] += MAIN_MODULE_TOTALS[module] * fraction

        n_blocks = int(block_of_cycle[-1]) + 1
        histories: List[EncryptionHistory] = []
        previous_final: np.ndarray | None = None
        for block in range(n_blocks):
            plaintext = bytes(plaintexts[block % len(plaintexts)])
            history = encrypt_block_with_history(
                plaintext, self.key, round_keys=self._round_keys
            )
            histories.append(history)
            self._accumulate_block(
                toggles, history, block, previous_final, n_cycles
            )
            previous_final = history.ciphertext

        return CoreActivity(
            toggles=toggles,
            histories=histories,
            block_of_cycle=block_of_cycle,
            phase_of_cycle=phase_of_cycle,
        )

    # -- internals -----------------------------------------------------------

    def _accumulate_block(
        self,
        toggles: Dict[str, np.ndarray],
        history: EncryptionHistory,
        block: int,
        previous_final: np.ndarray | None,
        n_cycles: int,
    ) -> None:
        """Add one block's data-dependent activity into ``toggles``."""
        base_cycle = block * BLOCK_CYCLES
        states = history.cycle_states()
        round_keys = history.round_keys

        for phase in range(BLOCK_CYCLES):
            cycle = base_cycle + phase
            if cycle >= n_cycles:
                return
            if phase == 0:
                # Load cycle: state register swings from the previous
                # ciphertext to plaintext ^ rk0.
                reference = (
                    previous_final
                    if previous_final is not None
                    else np.zeros(16, dtype=np.uint8)
                )
                hd_state = _hamming(reference, states[0])
                hd_sbox = hd_state  # S-box inputs swing with the state
                hd_mix = 0
                hd_key = _hamming(round_keys[10], round_keys[0])
            else:
                trace = history.rounds[phase - 1]
                hd_state = _hamming(states[phase - 1], states[phase])
                hd_sbox = _hamming(trace.state_in, trace.after_subbytes)
                hd_mix = _hamming(trace.after_shiftrows, trace.after_mixcolumns)
                hd_key = _hamming(round_keys[phase - 1], round_keys[phase])

            normalized = {
                "aes_sbox_bank": hd_sbox / 128.0,
                "aes_key_expand": hd_key / 128.0,
                "aes_mixcolumns": hd_mix / 128.0,
                "aes_addroundkey": hd_state / 128.0,
                "aes_state_regs": hd_state / 128.0,
                "aes_round_ctrl": 0.5,
            }
            for module, activity in normalized.items():
                factor = _ACTIVITY_FACTORS[module]
                toggles[module][cycle] += (
                    MAIN_MODULE_TOTALS[module] * factor * activity
                )
