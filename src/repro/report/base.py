"""The shared report-rendering contract.

Every operator-facing result object in the library — the sweep
scorecards, the fleet monitoring summary, a single chip's session
report, the serve service's metrics snapshot — answers the same four
questions, so they share one surface:

* :meth:`ReportBase.to_dict` — the canonical JSON-ready payload
  (each report defines its own);
* :meth:`ReportBase.to_json` — that payload serialized exactly the
  way every report always serialized it (``json.dumps(…, indent=2)``),
  so re-homing an existing report onto the base changes nothing
  byte-for-byte;
* :meth:`ReportBase.to_table` — the plain-text rendering the CLI
  prints (delegates to the report's ``format``);
* :meth:`ReportBase.severity_rollup` — how many findings at each
  severity, derived from the report's own :meth:`ReportBase.severities`.

On top of those, :meth:`ReportBase.write_bundle` persists any report
as a timestamped artifact directory (JSON + table + rollup summary),
the operator loop's unit of evidence.
"""

from __future__ import annotations

import enum
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable

from ..errors import AnalysisError


class Severity(enum.Enum):
    """Operator-facing weight of one report finding.

    ``OK`` — the finding is the expected/healthy outcome; ``WARNING``
    — degraded but not a verdict (a false alarm, a shed window span);
    ``CRITICAL`` — demands operator attention (a missed Trojan in an
    evaluation sweep, an alarming chip in a deployment fleet).
    """

    OK = "ok"
    WARNING = "warning"
    CRITICAL = "critical"


#: Rollup key order (most severe last, matching log-reading habit).
SEVERITY_ORDER = (Severity.OK, Severity.WARNING, Severity.CRITICAL)


class ReportBase:
    """Mixin giving a result object the shared report surface.

    Subclasses must provide :meth:`to_dict` and :meth:`format`; the
    rest of the surface (JSON serialization, table alias, severity
    rollups, bundle writing) is inherited.  The mixin carries no
    state, so frozen dataclasses subclass it freely.
    """

    #: Short kind tag used in bundle directory names.
    report_kind: str = "report"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload of the report (subclass-defined)."""
        raise NotImplementedError

    def format(self) -> str:
        """Plain-text rendering of the report (subclass-defined)."""
        raise NotImplementedError

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` exactly as reports always did."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_table(self) -> str:
        """The CLI's plain-text rendering (alias of :meth:`format`)."""
        return self.format()

    def severities(self) -> Iterable[Severity]:
        """One :class:`Severity` per finding (subclass-defined scope).

        The default is an empty stream: a report with no notion of
        per-finding severity still rolls up (to all-zero counts)
        rather than failing.
        """
        return ()

    def severity_rollup(self) -> Dict[str, int]:
        """Count findings per severity, every level always present."""
        counts = {severity.value: 0 for severity in SEVERITY_ORDER}
        for severity in self.severities():
            if not isinstance(severity, Severity):
                raise AnalysisError(
                    f"severities() must yield Severity, got {severity!r}"
                )
            counts[severity.value] += 1
        return counts

    @property
    def worst_severity(self) -> Severity:
        """The most severe finding level (OK when there are none)."""
        worst = Severity.OK
        ladder = {sev: rank for rank, sev in enumerate(SEVERITY_ORDER)}
        for severity in self.severities():
            if ladder[severity] > ladder[worst]:
                worst = severity
        return worst

    def write_bundle(
        self,
        directory: "str | Path",
        stamp: "datetime | None" = None,
    ) -> Path:
        """Persist the report as a timestamped artifact directory.

        Creates ``<directory>/<kind>-<UTC stamp>/`` holding
        ``report.json`` (:meth:`to_json`), ``report.txt``
        (:meth:`to_table`) and ``summary.json`` (the severity rollup
        plus provenance), and returns that bundle path.  A caller-
        supplied ``stamp`` pins the directory name (tests, resumable
        pipelines); the default is *now* in UTC.
        """
        stamp = stamp or datetime.now(timezone.utc)
        name = f"{self.report_kind}-{stamp.strftime('%Y%m%dT%H%M%S%fZ')}"
        bundle = Path(directory) / name
        bundle.mkdir(parents=True, exist_ok=False)
        (bundle / "report.json").write_text(
            self.to_json() + "\n", encoding="utf-8"
        )
        (bundle / "report.txt").write_text(
            self.to_table() + "\n", encoding="utf-8"
        )
        summary = {
            "kind": self.report_kind,
            "written_utc": stamp.isoformat(),
            "severity": self.severity_rollup(),
            "worst": self.worst_severity.value,
        }
        (bundle / "summary.json").write_text(
            json.dumps(summary, indent=2) + "\n", encoding="utf-8"
        )
        return bundle
