"""Signal-processing and statistics substrate.

Everything in this package is generic DSP/statistics used by the rest of
the library: spectra, filters, RMS/dB metrics, envelope features,
detection statistics, and from-scratch PCA / K-means implementations
(used by the backscattering baseline of Nguyen et al., HOST'20).
"""

from .transforms import (
    Spectrum,
    amplitude_spectra,
    amplitude_spectrum,
    average_spectra,
    band_slice,
    resample_spectra,
    resample_spectrum,
    spectrum_dbuv,
)
from .filters import (
    analytic_bandpass,
    apply_transfer,
    apply_transfer_batch,
    butter_highpass_response,
    butter_lowpass_response,
    envelope_lowpass,
)
from .metrics import db_amplitude, db_to_amplitude, rms, snr_rms_db
from .features import EnvelopeFeatures, envelope_features
from .stats import (
    DetectionPower,
    cohens_d,
    detection_power,
    detection_rate,
    required_measurements,
    roc_auc,
    welch_t,
    z_score,
)
from .pca import PCA
from .kmeans import KMeans, KMeansResult

__all__ = [
    "Spectrum",
    "amplitude_spectra",
    "amplitude_spectrum",
    "average_spectra",
    "band_slice",
    "resample_spectra",
    "resample_spectrum",
    "spectrum_dbuv",
    "analytic_bandpass",
    "apply_transfer",
    "apply_transfer_batch",
    "butter_highpass_response",
    "butter_lowpass_response",
    "envelope_lowpass",
    "db_amplitude",
    "db_to_amplitude",
    "rms",
    "snr_rms_db",
    "EnvelopeFeatures",
    "envelope_features",
    "DetectionPower",
    "cohens_d",
    "detection_power",
    "detection_rate",
    "required_measurements",
    "roc_auc",
    "welch_t",
    "z_score",
    "PCA",
    "KMeans",
    "KMeansResult",
]
