"""The batched measurement engine subsystem.

Everything between an :class:`~repro.chip.power.ActivityRecord` and an
analyzed voltage trace routes through here:

* :class:`MeasurementEngine` — the vectorized EMF→trace renderer
  (spectral synthesis, folded noise, one irFFT per trace);
* :class:`TraceBatch` — the ``(n_receivers, n_traces, n_samples)``
  result container with lazy per-trace conversion;
* :class:`RenderPlan` — the fused dispatch layer: enqueue many
  logical renders (sweep cells, fleet chips, scan levels) and execute
  them as one mega-batched engine pass, demultiplexed bit-identically;
* :mod:`~repro.engine.backends` / :mod:`~repro.engine.shm` —
  pluggable execution backends (``serial`` reference, ``process``
  worker pool, ``shared`` zero-copy shared-memory pool), selectable
  from :class:`~repro.config.SimConfig` and the CLI;
* :mod:`~repro.engine.cache` — administration of the content-keyed
  coupling-geometry cache.

The legacy per-trace APIs (``ProgrammableSensorArray.measure*``, the
baselines' ``ReceiverBench``) are thin wrappers over one engine render,
so per-trace and batched outputs are identical bit-for-bit.
"""

from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    backend_session_stats,
    close_backend_sessions,
    resolve_backend,
)
from .batch import TraceBatch
from .cache import (
    clear_coupling_cache,
    coupling_cache_stats,
    coupling_geometry_key,
    kernel_spectrum_stats,
)
from .engine import MeasurementEngine, ReceiverPlan, render_stream_name
from .plan import RenderPlan, RenderTicket
from .shm import SharedMemoryBackend

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "SharedMemoryBackend",
    "backend_session_stats",
    "close_backend_sessions",
    "resolve_backend",
    "TraceBatch",
    "clear_coupling_cache",
    "coupling_cache_stats",
    "coupling_geometry_key",
    "kernel_spectrum_stats",
    "MeasurementEngine",
    "ReceiverPlan",
    "RenderPlan",
    "RenderTicket",
    "render_stream_name",
]
