"""Backscattering-based clustering detection (Nguyen et al., HOST'20).

The paper's strongest prior baseline: a transmitter antenna injects a
carrier into the IC; switching activity modulates the chip's input
impedance, so the reflected (backscattered) signal carries sidebands
that reveal Trojan activity even at very small current draw.  Spectra
of the reflections are categorized with PCA + K-means — golden-chip
free, ~100 measurements, high detection rate, but *no localization*
(a single antenna integrates the whole chip).

The substitution here: the reflection envelope is synthesized from the
chip's aggregate activity waveform (impedance modulation is
proportional to instantaneous switching), band-limited around the
carrier and noised to the radio link's SNR.  The PCA/K-means stage is
the real algorithm, implemented from scratch in :mod:`repro.dsp`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..chip.power import ActivityRecord
from ..chip.testchip import TestChip
from ..dsp.kmeans import KMeans
from ..dsp.pca import PCA
from ..errors import AnalysisError
from ..rng import stream
from ..workloads.campaign import MeasurementCampaign
from ..workloads.scenarios import reference_for
from .protocol import (
    EVALUATED_TROJANS,
    MethodReport,
    outcome_from_populations,
)

#: Impedance-modulation depth per unit normalized activity.
MODULATION_DEPTH = 0.02

#: Radio-link noise relative to the carrier amplitude.
LINK_NOISE_FRACTION = 0.0007

#: Number of sideband bins kept as the feature vector.
N_FEATURE_BINS = 64

#: The method's nominal trace budget (Nguyen et al. report ~100).
TRACE_BUDGET = 100


class BackscatterMethod:
    """Table I column "Nguyen [9]"."""

    name = "backscatter"
    localization = False
    runtime = False

    def __init__(self, chip: TestChip, campaign: MeasurementCampaign):
        self.chip = chip
        self.campaign = campaign

    # -- reflection synthesis ------------------------------------------------------

    def reflection_features(
        self, record: ActivityRecord, trace_index: int
    ) -> np.ndarray:
        """Sideband feature vector of one backscattered capture.

        The reflected amplitude is ``1 + depth * activity(t)``; its
        baseband spectrum (the demodulated sidebands) is the feature.
        """
        config = self.chip.config
        activity = record.combined().sum(axis=0)
        peak = float(activity.max()) or 1.0
        envelope = 1.0 + MODULATION_DEPTH * activity / peak
        rng = stream(
            config.seed, f"backscatter/{record.scenario}/{trace_index}"
        )
        envelope = envelope + rng.normal(
            0.0, LINK_NOISE_FRACTION, envelope.size
        )
        spectrum = np.abs(np.fft.rfft(envelope - envelope.mean()))
        return spectrum[1 : N_FEATURE_BINS + 1]

    def _population_features(
        self, scenario_name: str, n_traces: int, index_offset: int
    ) -> np.ndarray:
        from ..workloads.scenarios import scenario_by_name

        scenario = scenario_by_name(scenario_name)
        rows = []
        for index in range(n_traces):
            record = self.campaign.record(scenario, index_offset + index)
            rows.append(self.reflection_features(record, index_offset + index))
        return np.vstack(rows)

    # -- PCA + K-means categorization -------------------------------------------------

    def cluster_scores(
        self, inactive: np.ndarray, active: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """PCA-project both populations and K-means them into 2 groups.

        Returns ``(inactive_scores, active_scores, cluster_accuracy)``
        where the scores are the first principal component and the
        accuracy measures how cleanly K-means separates the truth.
        """
        stacked = np.vstack([inactive, active])
        pca = PCA(n_components=min(4, stacked.shape[1], stacked.shape[0] - 1))
        projected = pca.fit_transform(stacked)
        result = KMeans(n_clusters=2).fit(projected)
        labels = result.labels
        truth = np.concatenate(
            [np.zeros(len(inactive), dtype=int), np.ones(len(active), dtype=int)]
        )
        agreement = float(np.mean(labels == truth))
        accuracy = max(agreement, 1.0 - agreement)
        scores = projected[:, 0]
        # A principal axis is defined up to sign; orient it so Trojan
        # activity scores high, matching the one-sided convention of
        # every other detection statistic.
        if scores[len(inactive) :].mean() < scores[: len(inactive)].mean():
            scores = -scores
        return scores[: len(inactive)], scores[len(inactive) :], accuracy

    def evaluate(self, n_traces: int = 30) -> MethodReport:
        """Run the full per-Trojan evaluation."""
        if n_traces < 8:
            raise AnalysisError("need at least 8 traces per population")
        report = MethodReport(
            name=self.name,
            localization=self.localization,
            runtime=self.runtime,
        )
        report.snr_db = float("nan")  # not a magnetic receiver
        for trojan in EVALUATED_TROJANS:
            reference = reference_for(trojan).name
            inactive = self._population_features(reference, n_traces, 0)
            active = self._population_features(trojan, n_traces, 700)
            neg_scores, pos_scores, accuracy = self.cluster_scores(
                inactive, active
            )
            outcome = outcome_from_populations(trojan, neg_scores, pos_scores)
            # A clustering method detects when its trace budget covers
            # the required sample size; below that, the observed
            # cluster purity is the honest rate.
            rate = 1.0 if outcome.n_required <= TRACE_BUDGET else accuracy
            report.outcomes[trojan] = outcome.__class__(
                trojan=trojan,
                effect_size=outcome.effect_size,
                n_required=outcome.n_required,
                detection_rate=rate,
            )
        return report
