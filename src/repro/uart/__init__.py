"""RS232 UART substrate.

The test chip receives plaintext from, and returns ciphertext to, a
laptop over a serial link (Section V-A).  This package implements the
8N1 framing, a synchronous FIFO, and a cycle model that transports bytes
at a configurable baud rate while exposing its (small) switching
activity to the EM model.
"""

from .frames import decode_frames, encode_frame, FRAME_BITS
from .fifo import Fifo
from .uart import Uart, UartConfig

__all__ = [
    "decode_frames",
    "encode_frame",
    "FRAME_BITS",
    "Fifo",
    "Uart",
    "UartConfig",
]
