"""The batched measurement engine — the EMF→trace hot path.

One render call turns activity records plus a coupling matrix into a
:class:`~repro.engine.batch.TraceBatch` for any subset of receivers
and any list of capture indices.  The whole signal chain is evaluated
in the frequency domain and inverse-transformed once per trace:

1. **EMF synthesis** — :func:`repro.em.coupling.emf_rfft` builds each
   record's per-receiver EMF spectrum from the closed-form impulse-
   train DFT and the cached kernel spectrum; the result is computed
   once per distinct record and *reused across every trace index* that
   renders it.
2. **Noise** — the white components of the chain (coil Johnson +
   broadband ambient, referred through the amplifier's input divider,
   plus the amplifier's own input noise) fold into a single Gaussian
   drawn directly in the frequency domain (the formulation of
   :func:`repro.em.noise.white_noise_spectrum`, with the gain curve
   folded into the per-bin scales); the narrowband ambient tones are
   single spectral lines with per-capture random phase.
3. **Band shaping** — the amplifier's cached gain curve multiplies the
   assembled spectra; one batched irFFT produces the final samples.

Determinism contract
--------------------
Every random draw for capture ``(receiver, trace_index)`` comes from
the stream ``render/{scenario}/{receiver}/{trace_index}`` of the config
seed, with a fixed draw order (optional gain-jitter scalar, then the
white spectrum, then one phase per ambient tone).  Rendering is
therefore bit-for-bit independent of batch composition: a trace comes
out identical whether rendered alone, inside any batch, through
``measure``/``measure_all`` compatibility wrappers, or on any
execution backend / worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as scipy_fft

from ..chip.power import ActivityRecord
from ..config import SimConfig
from ..em.amplifier import MeasurementAmplifier
from ..em.coupling import CouplingMatrix, CouplingStack, Receiver, emf_rfft
from ..em.noise import (
    NoiseModel,
    add_tone_spectrum,
    fill_white_noise_spectrum,
    tone_bin,
    tone_line,
    white_noise_scales,
)
from ..errors import MeasurementError
from ..rng import stream
from .backends import ExecutionBackend, SerialBackend, resolve_backend
from .batch import TraceBatch

#: Traces converted from spectrum to time per irFFT call; keeps the
#: complex scratch cache-resident while amortizing irFFT call overhead.
DEFAULT_CHUNK_TRACES = 16


def render_stream_name(scenario: str, receiver: str, trace_index: int) -> str:
    """RNG stream identity of one rendered capture."""
    return f"render/{scenario}/{receiver}/{trace_index}"


@dataclass(frozen=True)
class ReceiverPlan:
    """Per-receiver constants precomputed once per render.

    Attributes
    ----------
    name:
        Receiver identity (trace label and RNG stream component).
    divider:
        Amplifier input divider for this receiver's source impedance.
    white_rms_eff:
        RMS of the folded white noise at the amplifier input: the
        receiver-side white noise through the divider combined with
        the amplifier's input-referred noise.
    tones:
        Ambient interferers as ``(freq, input_amplitude)`` pairs,
        already referred through the divider.
    gain_jitter:
        Per-capture relative gain drift (external probes only).
    r_series, n_turns:
        Metadata propagated onto constructed traces.
    """

    name: str
    divider: float
    white_rms_eff: float
    tones: Tuple[Tuple[float, float], ...]
    gain_jitter: float
    r_series: float
    n_turns: int


@dataclass
class _ShardRecord:
    """Slim stand-in for a factor-bearing record in backend shards.

    The render path reads only ``config``, ``scenario`` and
    ``factors`` when a record carries its low-rank decomposition, so
    process-backend payloads ship this proxy instead of the full
    record (whose dense toggle matrices would otherwise dominate the
    inter-process traffic).
    """

    config: SimConfig
    scenario: str
    factors: dict


def _render_shard(payload: tuple) -> np.ndarray:
    """Process-pool entry point: render one shard serially."""
    engine, coupling, records, trace_indices, receiver_indices = payload
    return engine._render_serial(
        coupling, records, trace_indices, receiver_indices
    )


class MeasurementEngine:
    """Vectorized renderer from activity records to trace batches.

    Parameters
    ----------
    config:
        Simulation configuration (seed, sampling grid, temperature).
    amplifier:
        Measurement front-end shared by every rendered channel.
    backend:
        Execution backend: an instance, a name (``"serial"`` /
        ``"process"``), or None to follow ``config.engine_backend``.
    workers:
        Worker count for the process backend (0 = follow
        ``config.engine_workers``, which defaults to the CPU count).
    chunk_traces:
        Traces per irFFT chunk (memory/throughput trade-off).
    """

    def __init__(
        self,
        config: SimConfig,
        amplifier: Optional[MeasurementAmplifier] = None,
        backend: "str | ExecutionBackend | None" = None,
        workers: int = 0,
        chunk_traces: int = DEFAULT_CHUNK_TRACES,
    ):
        if chunk_traces < 1:
            raise MeasurementError("chunk_traces must be >= 1")
        self.config = config
        self.amplifier = amplifier or MeasurementAmplifier()
        if backend is None:
            backend = config.engine_backend
        if not workers:
            workers = config.engine_workers
        self.backend = resolve_backend(backend, workers)
        self.chunk_traces = chunk_traces

    # -- pickling (workers render their shards serially) ---------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["backend"] = SerialBackend()
        return state

    # -- planning ------------------------------------------------------------

    def _plan(self, receiver: Receiver) -> ReceiverPlan:
        config = self.config
        fs = config.fs
        noise = NoiseModel(
            resistance=receiver.r_series,
            temperature_c=config.temperature_c,
            ambient_area=receiver.ambient_gain,
        )
        divider = self.amplifier.source_divider(receiver.r_series)
        white_eff = math.sqrt(
            (noise.white_rms(fs) * divider) ** 2
            + self.amplifier.input_noise_rms(fs) ** 2
        )
        tones = tuple(
            (freq, amplitude * divider) for freq, amplitude in noise.tones(fs)
        )
        return ReceiverPlan(
            name=receiver.name,
            divider=divider,
            white_rms_eff=white_eff,
            tones=tones,
            gain_jitter=receiver.gain_jitter,
            r_series=receiver.r_series,
            n_turns=len(receiver.turns),
        )

    # -- rendering -----------------------------------------------------------

    def render(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: Sequence[ActivityRecord],
        trace_indices: Optional[Sequence[int]] = None,
        receiver_indices: Optional[Sequence[int]] = None,
    ) -> TraceBatch:
        """Render a batch of captures into a :class:`TraceBatch`.

        Parameters
        ----------
        coupling:
            Coupling matrix of the candidate receivers, or a
            :class:`~repro.em.coupling.CouplingStack` of independently
            synthesized coils (arbitrary programmed windows render in
            one batch, each row bit-identical to its standalone
            render).
        records:
            Either one record per capture, or a single record reused
            for every capture (fresh noise per trace index).
        trace_indices:
            RNG stream index per capture (defaults to ``0..n-1``).
        receiver_indices:
            Subset of ``coupling.receivers`` to render (default: all).

        Returns
        -------
        TraceBatch
            ``(n_receivers, n_traces, n_samples)`` voltage samples plus
            per-receiver/per-capture metadata.
        """
        records = list(records)
        if not records:
            raise MeasurementError("no records to render")
        if trace_indices is None:
            trace_indices = list(range(len(records)))
        else:
            trace_indices = [int(index) for index in trace_indices]
        if len(records) == 1 and len(trace_indices) > 1:
            records = records * len(trace_indices)
        if len(records) != len(trace_indices):
            raise MeasurementError(
                f"{len(records)} records for {len(trace_indices)} trace "
                "indices (pass one record, or one per index)"
            )
        for record in records:
            if record.config.n_samples != self.config.n_samples:
                raise MeasurementError(
                    "record sampling grid does not match the engine config"
                )
        if receiver_indices is None:
            receiver_indices = list(range(coupling.n_receivers))
        else:
            receiver_indices = [int(index) for index in receiver_indices]
        for index in receiver_indices:
            if not 0 <= index < coupling.n_receivers:
                raise MeasurementError(
                    f"receiver index {index} outside the coupling matrix"
                )

        samples = self._dispatch(
            coupling, records, trace_indices, receiver_indices
        )
        plans = [self._plan(coupling.receivers[i]) for i in receiver_indices]
        return TraceBatch(
            samples=samples,
            fs=self.config.fs,
            labels=tuple(plan.name for plan in plans),
            scenarios=tuple(record.scenario for record in records),
            trace_indices=tuple(trace_indices),
            receiver_meta=tuple(
                {"r_series": plan.r_series, "turns": plan.n_turns}
                for plan in plans
            ),
        )

    def _dispatch(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: List[ActivityRecord],
        trace_indices: List[int],
        receiver_indices: List[int],
    ) -> np.ndarray:
        """Shard the render over the backend and reassemble."""
        n_traces = len(trace_indices)
        n_shards = min(self.backend.parallelism, n_traces)
        if n_shards <= 1:
            return self._render_serial(
                coupling, records, trace_indices, receiver_indices
            )
        # Factor-bearing records travel as slim proxies; proxies are
        # deduplicated by source identity so workers keep the
        # one-EMF-per-distinct-record reuse.
        proxies: Dict[int, _ShardRecord] = {}

        def _compact(record: ActivityRecord) -> "ActivityRecord | _ShardRecord":
            if record.factors is None:
                return record
            proxy = proxies.get(id(record))
            if proxy is None:
                proxy = _ShardRecord(
                    config=record.config,
                    scenario=record.scenario,
                    factors=record.factors,
                )
                proxies[id(record)] = proxy
            return proxy

        compact_records = [_compact(record) for record in records]
        bounds = np.linspace(0, n_traces, n_shards + 1).astype(int)
        payloads = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            payloads.append(
                (
                    self,
                    coupling,
                    compact_records[lo:hi],
                    trace_indices[lo:hi],
                    receiver_indices,
                )
            )
        # Backends with a zero-copy path (``shared``) assemble the
        # result themselves in shared memory; everything else returns
        # pickled shards that are concatenated here.  Both routes are
        # bit-identical — only the transport differs.
        map_concat = getattr(self.backend, "map_concat", None)
        if map_concat is not None:
            out_shape = (
                len(receiver_indices),
                n_traces,
                self.config.n_samples,
            )
            return map_concat(_render_shard, payloads, out_shape, bounds)
        shards = self.backend.map(_render_shard, payloads)
        return np.concatenate(shards, axis=1)

    def _render_serial(
        self,
        coupling: "CouplingMatrix | CouplingStack",
        records: List[ActivityRecord],
        trace_indices: List[int],
        receiver_indices: List[int],
    ) -> np.ndarray:
        """Reference implementation: one process, chunked irFFTs.

        The amplifier's gain curve is folded into every pre-computed
        scale (EMF rows, per-bin white-noise scales, tone lines), so
        each capture assembles its final filtered spectrum directly and
        the only remaining full-spectrum passes are the per-bin writes
        and one batched irFFT per chunk.
        """
        config = self.config
        n = config.n_samples
        fs = config.fs
        n_bins = n // 2 + 1
        n_traces = len(trace_indices)
        n_receivers = len(receiver_indices)
        plans = [self._plan(coupling.receivers[i]) for i in receiver_indices]
        gain = self.amplifier.gain_curve(fs, n)

        # Per-receiver white-noise scales with the gain curve folded in
        # (the layout itself lives in repro.em.noise).
        noise_scales = [
            white_noise_scales(n, plan.white_rms_eff, bin_gain=gain)
            for plan in plans
        ]

        # Ambient tones: on-bin tones are single filtered lines with a
        # precomputed effective amplitude; off-bin tones (non-default
        # grids) fall back to add_tone_spectrum plus the gain curve.
        tone_plans: List[List[tuple]] = []
        for plan in plans:
            entries = []
            for freq, amplitude in plan.tones:
                bin_index = tone_bin(n, fs, freq)
                if bin_index is not None:
                    entries.append(
                        (bin_index, amplitude * gain[bin_index])
                    )
                else:
                    entries.append((None, (freq, amplitude)))
            tone_plans.append(entries)

        # EMF spectra once per distinct record, reused across captures,
        # with divider and gain curve folded in per receiver.
        emf_scale = np.array([plan.divider for plan in plans])[:, None] * gain
        emf_cache: Dict[int, np.ndarray] = {}

        def emf_rows(record: ActivityRecord) -> np.ndarray:
            key = id(record)
            rows = emf_cache.get(key)
            if rows is None:
                rows = emf_rfft(coupling, record)[receiver_indices]
                rows *= emf_scale
                emf_cache[key] = rows
            return rows

        out = np.empty((n_receivers, n_traces, n))
        chunk = min(self.chunk_traces, n_traces)
        scratch = np.empty((n_receivers, chunk, n_bins), dtype=complex)
        z_buffer = np.empty(n)
        two_pi = 2.0 * math.pi
        for lo in range(0, n_traces, chunk):
            hi = min(lo + chunk, n_traces)
            spec = scratch[:, : hi - lo]
            for offset in range(hi - lo):
                position = lo + offset
                record = records[position]
                emf = emf_rows(record)
                for row_index, plan in enumerate(plans):
                    row = spec[row_index, offset]
                    rng = stream(
                        config.seed,
                        render_stream_name(
                            record.scenario, plan.name, trace_indices[position]
                        ),
                    )
                    jitter = 1.0
                    if plan.gain_jitter > 0.0:
                        jitter = (
                            1.0 + plan.gain_jitter * rng.standard_normal()
                        )
                    z = rng.standard_normal(n, out=z_buffer)
                    fill_white_noise_spectrum(
                        row, z, *noise_scales[row_index]
                    )
                    for bin_index, payload in tone_plans[row_index]:
                        phase = rng.uniform(0.0, two_pi)
                        if bin_index is not None:
                            row[bin_index] += tone_line(payload, n, phase)
                        else:
                            freq, amplitude = payload
                            tone = np.zeros(n_bins, dtype=complex)
                            add_tone_spectrum(
                                tone, n, fs, freq, amplitude, phase
                            )
                            row += gain * tone
                    if jitter != 1.0:
                        row += jitter * emf[row_index]
                    else:
                        row += emf[row_index]
            out[:, lo:hi] = scipy_fft.irfft(
                spec.reshape(-1, n_bins), n=n, axis=-1, overwrite_x=True
            ).reshape(n_receivers, hi - lo, n)
        return out
