"""Section VI-D — localization to sensor 10 with quadrant refinement.

Paper: the PSA "not only ensures a 100 % detection rate but also ...
precisely identifying the HTs' physical location"; all four Trojans
live under sensor 10, one per quadrant in our floorplan.
"""

import numpy as np

from repro.experiments.localization import (
    EXPECTED_QUADRANTS,
    EXPECTED_SENSOR,
    format_localization,
    run_localization,
)


def test_localization(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_localization(ctx, n_records=3), rounds=1, iterations=1
    )
    assert result.sensors_correct
    assert result.quadrants_correct
    for trojan, loc in result.results.items():
        assert loc.sensor_index == EXPECTED_SENSOR, trojan
        assert loc.quadrant == EXPECTED_QUADRANTS[trojan], trojan
        assert loc.margin_db > 0.0, trojan
        # The position estimate stays within ~150 um of ground truth.
        true = ctx.chip.floorplan.placements[trojan][0].center
        error = np.hypot(loc.position[0] - true[0], loc.position[1] - true[1])
        assert error < 150e-6, trojan
    print()
    print(format_localization(result))
