"""Section VI-D — run-time detection latency.

Paper: "fewer than ten traces collected to detect a HT, resulting in
less than 10 ms MTTD".
"""

from repro.experiments.mttd import BUDGET_SECONDS, BUDGET_TRACES, format_mttd, run_mttd


def test_mttd(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_mttd(ctx, n_baseline=7, n_active=4),
        rounds=1,
        iterations=1,
    )
    assert result.all_within_budget
    for trojan, scenario in result.scenarios.items():
        assert scenario.result.detected, trojan
        assert scenario.result.traces_to_detect < BUDGET_TRACES, trojan
        assert scenario.result.mttd_s < BUDGET_SECONDS, trojan
    # The per-trace cadence itself leaves ample headroom.
    assert result.trace_period_s < 2e-3
    print()
    print(format_mttd(result))
