"""Name → detector-class registry with lazy builtin resolution.

Builtins are registered as ``"module:attr"`` specs and imported only
when first requested, so ``import repro.detectors`` stays cheap and a
plugin's import errors surface at :func:`get` time with the detector
name attached.  Third-party code registers concrete classes directly::

    from repro import detectors

    @detectors.register("my-method")
    class MyDetector(detectors.Detector):
        ...
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Optional, Type, Union

from ..core.analysis.detector import DetectorConfig
from ..errors import AnalysisError, unknown_name_error
from .base import Detector

#: Registered factories: a Detector subclass, or a lazy
#: ``"module:attr"`` spec not yet imported.
_REGISTRY: Dict[str, Union[str, Type[Detector]]] = {}


def register(
    name: str, factory: Optional[Union[str, Type[Detector]]] = None
) -> Callable:
    """Register a detector class (or lazy spec) under ``name``.

    Usable as a plain call — ``register("welford", WelfordDetector)``
    or ``register("welford", "repro.detectors.welford:WelfordDetector")``
    — or as a class decorator when ``factory`` is omitted.

    Raises
    ------
    AnalysisError
        If ``name`` is already taken (re-registering under the same
        name is always a bug: silently replacing a detector would
        change what every sweep grid and monitor preset means).
    """
    if name in _REGISTRY:
        raise AnalysisError(
            f"detector name {name!r} is already registered; "
            "pick a distinct name"
        )

    def _store(cls: Union[str, Type[Detector]]):
        _REGISTRY[name] = cls
        return cls

    if factory is None:
        return _store
    return _store(factory)


def available() -> List[str]:
    """Registered detector names, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> Type[Detector]:
    """Resolve a detector name to its class.

    Lazy ``"module:attr"`` specs are imported on first use and the
    resolved class is cached back into the registry.

    Raises
    ------
    AnalysisError
        For unknown names (the message lists what *is* available) and
        for specs that fail to import or resolve to a non-Detector.
    """
    try:
        entry = _REGISTRY[name]
    except KeyError:
        raise unknown_name_error("detector", name, available()) from None
    if isinstance(entry, str):
        module_name, _, attr = entry.partition(":")
        try:
            module = importlib.import_module(module_name)
            entry = getattr(module, attr)
        except (ImportError, AttributeError) as exc:
            raise AnalysisError(
                f"detector {name!r} is registered as {_REGISTRY[name]!r} "
                f"but that spec failed to resolve: {exc}"
            ) from exc
        _REGISTRY[name] = entry
    if not (isinstance(entry, type) and issubclass(entry, Detector)):
        raise AnalysisError(
            f"detector {name!r} resolved to {entry!r}, which is not a "
            "Detector subclass"
        )
    return entry


def make_detector(
    name: str,
    n_streams: int,
    bank_config: Optional[DetectorConfig] = None,
) -> Detector:
    """Instantiate a registered detector for ``n_streams`` streams.

    ``bank_config`` is the rolling-Welford tuning threaded through
    sweep cells and pipeline configs; it reaches only detectors that
    declare ``uses_bank_config`` (the ``welford`` plugin).  Reference-
    free detectors carry their own config dataclasses with calibrated
    defaults.
    """
    cls = get(name)
    if bank_config is not None and getattr(cls, "uses_bank_config", False):
        return cls(n_streams, bank_config)
    return cls(n_streams)
