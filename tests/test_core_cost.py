"""Section V-B implementation-cost model."""

import pytest

from repro.core.cost import implementation_cost


@pytest.fixture(scope="module")
def cost():
    return implementation_cost()


def test_tgate_resistance_34_ohm(cost):
    assert cost.tgate_resistance_ohm == pytest.approx(34.0, rel=0.03)


def test_area_overhead_about_5_percent(cost):
    assert cost.area_overhead_fraction == pytest.approx(0.05, abs=0.01)


def test_routing_capacity_about_6_25_percent(cost):
    assert cost.routing_capacity_fraction == pytest.approx(0.0625, abs=0.005)


def test_single_coil_uses_whole_layer(cost):
    assert cost.single_coil_routing_fraction == 1.0
    assert (
        cost.routing_capacity_fraction
        < 0.1 * cost.single_coil_routing_fraction
    )


def test_power_overhead_negligible(cost):
    """Leakage of 1296 T-gates against ~1 mA of dynamic current."""
    assert cost.power_overhead_fraction < 0.01


def test_cost_responds_to_conditions():
    cold = implementation_cost(vdd=1.2, temperature_c=-40.0)
    hot = implementation_cost(vdd=0.8, temperature_c=125.0)
    assert cold.tgate_resistance_ohm != hot.tgate_resistance_ohm
    # Area/routing are geometry-only.
    assert cold.area_overhead_fraction == hot.area_overhead_fraction
