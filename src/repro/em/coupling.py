"""Coupling matrices and EMF synthesis.

``CouplingMatrix`` maps per-region currents to flux linkage in every
receiver (PSA coils, probes, single coil); :func:`emf_waveforms` turns
an :class:`~repro.chip.power.ActivityRecord` into induced-voltage
waveforms by convolving the per-cycle charge train with the
differentiated current kernel.

Two throughput mechanisms live here because this is where the physics
is computed:

* a **content-keyed geometry cache** — the flux-integral matrices
  depend only on (die grid, receiver turn geometry, resolution,
  calibration scales), so identical tuples are computed once per
  process no matter how many ``CouplingMatrix`` instances are built
  (administered through :mod:`repro.engine.cache`);
* a **spectral EMF path** (:func:`emf_rfft`) — the per-cycle charge
  train is an impulse train on the fast-time grid, so its DFT is the
  cycle-rate DFT of the charge amplitudes tiled across the trace bins;
  the kernel convolution becomes a cached bin-wise product.  This is
  what the batched :class:`repro.engine.MeasurementEngine` renders
  from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import signal as scipy_signal

from ..chip.floorplan import DIE_SIZE, POWER_STRIPES, REGION_LOOP_AREA, Floorplan, Rect
from ..chip.power import ActivityRecord, charge_per_toggle, emf_kernel
from ..config import SimConfig
from ..errors import ConfigError
from .loops import turns_flux_factor

#: Effective area of the package/bond-wire supply loop [m^2].  The
#: total chip current returns through bondwires and the package plane,
#: forming a die-scale loop — the dominant source for external probes.
BOND_LOOP_AREA = 3.0e-6

#: Height of the bond-loop's equivalent dipole below the die surface [m].
BOND_LOOP_Z = -0.4e-3

#: Process-wide cache of built coupling geometry, keyed by content
#: (see :func:`coupling_geometry_key`).  Values are the read-only
#: ``(matrix, bond_row)`` pair shared by every CouplingMatrix whose
#: inputs hash to the same key.
_GEOMETRY_CACHE: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
_GEOMETRY_HITS = 0
_GEOMETRY_MISSES = 0


def coupling_geometry_key(
    floorplan: Floorplan,
    receivers: Sequence["Receiver"],
    loop_area: float,
    points_per_side: int,
    scale: float,
    bond_scale: float,
    return_fraction: float,
) -> str:
    """Content key of a coupling-geometry computation.

    Covers everything the flux matrices depend on: the region grid and
    power-stripe layout, each receiver's turn rectangles and height,
    the integration resolution and the calibration scales.  Module
    *placements* are deliberately excluded — the geometry matrices do
    not depend on what logic sits in a region, so chips that differ
    only in floorplan contents share one computation.
    """
    h = hashlib.blake2b(digest_size=16)

    def _floats(*values: float) -> None:
        for value in values:
            h.update(float(value).hex().encode("ascii"))

    _floats(floorplan.die_size)
    h.update(int(floorplan.n_regions_side).to_bytes(4, "little"))
    h.update(np.ascontiguousarray(POWER_STRIPES, dtype=float).tobytes())
    _floats(loop_area, scale, bond_scale, return_fraction)
    h.update(int(points_per_side).to_bytes(4, "little"))
    for receiver in receivers:
        _floats(receiver.z)
        for turn in receiver.turns:
            _floats(turn.x0, turn.y0, turn.x1, turn.y1)
    return h.hexdigest()


def coupling_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the geometry cache."""
    return {
        "hits": _GEOMETRY_HITS,
        "misses": _GEOMETRY_MISSES,
        "entries": len(_GEOMETRY_CACHE),
    }


def clear_coupling_cache() -> None:
    """Drop every cached coupling geometry (mainly for tests)."""
    _GEOMETRY_CACHE.clear()


@dataclass(frozen=True)
class Receiver:
    """A flux-sensing structure (coil/probe).

    Attributes
    ----------
    name:
        Identifier, e.g. ``"psa_sensor_10"`` or ``"langer_lf1"``.
    turns:
        Enclosed rectangle of each series turn.
    z:
        Height of the sensing plane above the switching layer [m].
    r_series:
        Series resistance of the winding (wire + switches) [ohm].
    inductance:
        Series self-inductance estimate [H].
    ambient_gain:
        Effective area [m^2] multiplying the ambient field pickup
        (large for external probes, tiny for shielded on-chip coils).
    gain_jitter:
        Relative per-measurement gain drift (1-sigma).  External probes
        are repositioned between captures and their fixtures drift;
        fabricated on-chip coils have none.  This drift is the dominant
        reason conventional probe statistics need thousands of traces.
    """

    name: str
    turns: List[Rect]
    z: float
    r_series: float
    inductance: float = 0.0
    ambient_gain: float = 0.0
    gain_jitter: float = 0.0

    @property
    def total_turn_area(self) -> float:
        """Sum of the enclosed areas of all turns [m^2]."""
        return float(sum(turn.area for turn in self.turns))


class CouplingMatrix:
    """Flux-linkage matrix between floorplan regions and receivers.

    Parameters
    ----------
    floorplan:
        Provides the dipole-pair source geometry.
    receivers:
        Sensing structures.
    loop_area:
        Effective supply-loop area per region [m^2] (dipole moment per
        ampere).
    points_per_side:
        Line-integral resolution of the flux computation.
    scale:
        Dimensionless absolute-coupling calibration applied uniformly
        to the region-dipole matrix (see :mod:`repro.calibration`);
        relative comparisons between receivers are unaffected.
    bond_scale:
        Calibration of the package/bond-loop coupling (the global
        total-current term).
    return_fraction:
        Weight of the local return pole (see
        :data:`repro.calibration.RETURN_FRACTION`).
    """

    def __init__(
        self,
        floorplan: Floorplan,
        receivers: Sequence[Receiver],
        loop_area: float = REGION_LOOP_AREA,
        points_per_side: int = 48,
        scale: float = 1.0,
        bond_scale: float | None = None,
        return_fraction: float | None = None,
    ):
        if not receivers:
            raise ConfigError("need at least one receiver")
        if scale <= 0:
            raise ConfigError(f"coupling scale must be positive, got {scale}")
        from ..calibration import BOND_COUPLING_SCALE, RETURN_FRACTION

        self.floorplan = floorplan
        self.receivers = list(receivers)
        self.loop_area = loop_area
        self.points_per_side = points_per_side
        self.scale = scale
        self.bond_scale = (
            BOND_COUPLING_SCALE if bond_scale is None else bond_scale
        )
        self.return_fraction = (
            RETURN_FRACTION if return_fraction is None else return_fraction
        )
        if not 0.0 <= self.return_fraction <= 1.0:
            raise ConfigError("return_fraction must be within [0, 1]")
        global _GEOMETRY_HITS, _GEOMETRY_MISSES
        key = coupling_geometry_key(
            floorplan,
            self.receivers,
            self.loop_area,
            self.points_per_side,
            self.scale,
            self.bond_scale,
            self.return_fraction,
        )
        cached = _GEOMETRY_CACHE.get(key)
        if cached is None:
            _GEOMETRY_MISSES += 1
            cached = (self._build(), self._build_bond_row())
            _GEOMETRY_CACHE[key] = cached
        else:
            _GEOMETRY_HITS += 1
        self.matrix, self.bond_row = cached
        # Per-instance scratch used by the engine's low-rank fast path:
        # maps a factor name to its (weights, matrix @ weights) pair.
        self._projection_cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    def _build(self) -> np.ndarray:
        """Region-dipole flux matrix, with area smearing.

        A region's current is distributed, not a point: each source
        pole is averaged over a 2x2 sample grid inside its region, and
        each return pole over the same span along its stripe.  The
        smearing removes the artificial sensitivity of thin-loop flux
        to a point dipole grazing a coil wire.
        """
        sources, returns = self.floorplan.dipole_pairs()
        quarter = self.floorplan.region_size / 4.0
        source_offsets = np.array(
            [[-quarter, -quarter], [quarter, -quarter],
             [-quarter, quarter], [quarter, quarter]]
        )
        return_offsets = np.array(
            [[0.0, -quarter], [0.0, quarter]]
        )
        rows = []
        for receiver in self.receivers:
            flux_pos = np.zeros(sources.shape[0])
            for offset in source_offsets:
                flux_pos += turns_flux_factor(
                    receiver.turns,
                    receiver.z,
                    sources + offset,
                    0.0,
                    self.points_per_side,
                )
            flux_pos /= len(source_offsets)
            flux_neg = np.zeros(returns.shape[0])
            for offset in return_offsets:
                flux_neg += turns_flux_factor(
                    receiver.turns,
                    receiver.z,
                    returns + offset,
                    0.0,
                    self.points_per_side,
                )
            flux_neg /= len(return_offsets)
            rows.append(
                (flux_pos - self.return_fraction * flux_neg)
                * self.loop_area
                * self.scale
            )
        matrix = np.asarray(rows)
        matrix.setflags(write=False)
        return matrix

    def _build_bond_row(self) -> np.ndarray:
        """Per-receiver flux linkage with the package loop [Wb/A]."""
        center = np.array([[DIE_SIZE / 2.0, DIE_SIZE / 2.0]])
        row = np.zeros(len(self.receivers))
        for index, receiver in enumerate(self.receivers):
            factor = turns_flux_factor(
                receiver.turns,
                receiver.z,
                center,
                BOND_LOOP_Z,
                self.points_per_side,
            )
            row[index] = factor[0] * BOND_LOOP_AREA * self.bond_scale
        row.setflags(write=False)
        return row

    @property
    def n_receivers(self) -> int:
        """Number of receivers."""
        return len(self.receivers)

    def row(self, name: str) -> np.ndarray:
        """Coupling row [Wb/A per region] of the named receiver."""
        for index, receiver in enumerate(self.receivers):
            if receiver.name == name:
                return self.matrix[index]
        raise ConfigError(f"no receiver named {name!r}")

    def index_of(self, name: str) -> int:
        """Index of the named receiver."""
        for index, receiver in enumerate(self.receivers):
            if receiver.name == name:
                return index
        raise ConfigError(f"no receiver named {name!r}")


class CouplingStack:
    """A read-only row concatenation of coupling matrices.

    The batched engine renders whatever set of receivers it is handed.
    A stack lets one render cover *independently synthesized* coils —
    each part keeps its own content-cached :class:`CouplingMatrix`
    (built once per distinct coil geometry, process-wide), and the
    stack simply presents their receivers as one list.

    EMF synthesis (:func:`emf_rfft`) delegates to each part rather than
    multiplying a concatenated matrix: BLAS matmul results differ in
    the last bits between a 1-row and an n-row operand, so delegation
    is what makes a stacked render bit-identical to rendering every
    part on its own (the contract the adaptive scanner and quadrant
    refinement rely on).

    Parameters
    ----------
    parts:
        Coupling matrices to stack, in receiver order.  Receiver names
        must be unique across the stack (they name RNG streams).
    """

    def __init__(self, parts: Sequence[CouplingMatrix]):
        if not parts:
            raise ConfigError("need at least one coupling matrix to stack")
        self.parts = list(parts)
        self.receivers: List[Receiver] = [
            receiver for part in self.parts for receiver in part.receivers
        ]
        names = [receiver.name for receiver in self.receivers]
        if len(set(names)) != len(names):
            duplicate = next(n for n in names if names.count(n) > 1)
            raise ConfigError(
                f"duplicate receiver name {duplicate!r} in coupling stack"
            )

    @property
    def n_receivers(self) -> int:
        """Total receivers across every stacked part."""
        return len(self.receivers)


def _charge_train(
    amplitudes: np.ndarray, config: SimConfig, sample_offset: int
) -> np.ndarray:
    """Spread per-cycle charges onto the fast-time grid as impulses."""
    n_receivers, n_cycles = amplitudes.shape
    train = np.zeros((n_receivers, config.n_samples))
    positions = np.arange(n_cycles) * config.oversample + sample_offset
    positions = positions[positions < config.n_samples]
    train[:, positions] = amplitudes[:, : positions.size]
    return train


def _project(coupling: CouplingMatrix, name: str, weights: np.ndarray) -> np.ndarray:
    """``matrix @ weights`` with per-factor memoization.

    Activity factors reuse the same weight vectors across every record
    of a chip, so each (coupling, factor) projection is computed once.
    The cached weights object is identity-checked to stay safe against
    a name collision with different contents.
    """
    cached = coupling._projection_cache.get(name)
    if cached is not None and cached[0] is weights:
        return cached[1]
    projected = coupling.matrix @ weights
    coupling._projection_cache[name] = (weights, projected)
    return projected


def charge_amplitudes(
    coupling: CouplingMatrix,
    record: ActivityRecord,
    switch_cap: float | None = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-receiver per-cycle charge amplitudes ``(rising, falling)``.

    Both are ``(n_receivers, n_cycles)`` matrices combining the
    region-dipole coupling with the global package-loop term; the
    falling matrix is ``None`` when the record carries no falling-phase
    (Trojan payload) activity at all.

    When the record exposes its low-rank :attr:`ActivityRecord.factors`
    (activity as a sum of per-module ``weights x toggles`` outer
    products, which is how :class:`~repro.chip.testchip.TestChip`
    builds it), the dense region matmul collapses to one cheap
    projection per module — the dominant cost of EMF synthesis
    disappears.  Dense records fall back to the full matmul.
    """
    config = record.config
    from ..chip.power import MEAN_SWITCH_CAP

    cap = MEAN_SWITCH_CAP if switch_cap is None else switch_cap
    q_per_toggle = charge_per_toggle(config.vdd, cap)

    factors = record.factors
    if factors is not None:

        def _assemble(parts) -> Optional[np.ndarray]:
            if not parts:
                return None
            total = np.zeros((coupling.n_receivers, config.n_cycles))
            bond_cycles = np.zeros(config.n_cycles)
            for name, weights, toggles in parts:
                row = _project(coupling, name, weights)
                charge = toggles * q_per_toggle
                total += np.outer(row, charge)
                bond_cycles += float(weights.sum()) * charge
            total += np.outer(coupling.bond_row, bond_cycles)
            return total

        rising_parts = list(factors.get("main", ())) + list(
            factors.get("trojan_rising", ())
        )
        rising_q = _assemble(rising_parts)
        if rising_q is None:
            rising_q = np.zeros((coupling.n_receivers, config.n_cycles))
        return rising_q, _assemble(list(factors.get("trojan", ())))

    rising = record.main + record.trojan_rising
    rising_q = coupling.matrix @ (rising * q_per_toggle)
    rising_q += np.outer(coupling.bond_row, rising.sum(axis=0) * q_per_toggle)
    if not record.trojan.any():
        return rising_q, None
    falling_q = coupling.matrix @ (record.trojan * q_per_toggle)
    falling_q += np.outer(
        coupling.bond_row, record.trojan.sum(axis=0) * q_per_toggle
    )
    return rising_q, falling_q


def emf_waveforms(
    coupling: CouplingMatrix,
    record: ActivityRecord,
    switch_cap: float | None = None,
) -> np.ndarray:
    """Induced EMF at every receiver, shape ``(n_receivers, n_samples)``.

    The main-circuit logic (and rising-phase Trojans such as T4's
    synchronous power virus) switches at the clock rising edge;
    falling-phase Trojan payloads render half a cycle later — this
    phase structure survives into the sideband spectrum.

    This is the time-domain reference path (linear convolution, tail
    truncated); the engine's batched renderer uses the spectral twin
    :func:`emf_rfft` instead.
    """
    config = record.config
    main_q, trojan_q = charge_amplitudes(coupling, record, switch_cap)
    kernel = emf_kernel(config)
    half_cycle = config.oversample // 2
    emf = _convolve_train(_charge_train(main_q, config, 0), kernel)
    if trojan_q is not None:
        emf += _convolve_train(
            _charge_train(trojan_q, config, half_cycle), kernel
        )
    return emf


def _convolve_train(train: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Convolve each row with the kernel, keeping the input length."""
    full = scipy_signal.fftconvolve(train, kernel[None, :], mode="full")
    return full[:, : train.shape[1]]


# -- spectral EMF synthesis (the engine's hot path) -------------------------

#: rFFT of the circularly-padded EMF kernel per configuration, keyed by
#: the config fields the kernel depends on.
_KERNEL_SPECTRUM_CACHE: Dict[Tuple[float, int, int], np.ndarray] = {}
_KERNEL_SPECTRUM_HITS = 0
_KERNEL_SPECTRUM_MISSES = 0


def kernel_spectrum(config: SimConfig) -> np.ndarray:
    """rFFT of the EMF kernel zero-padded to the trace length.

    Cached per (clock, oversample, trace length); read-only.  The
    cache persists across render dispatches (and engines), so the
    kernel transform is paid once per sampling grid per process.
    """
    global _KERNEL_SPECTRUM_HITS, _KERNEL_SPECTRUM_MISSES
    key = (config.f_clock, config.oversample, config.n_samples)
    spectrum = _KERNEL_SPECTRUM_CACHE.get(key)
    if spectrum is None:
        _KERNEL_SPECTRUM_MISSES += 1
        kernel = emf_kernel(config)
        padded = np.zeros(config.n_samples)
        padded[: kernel.size] = kernel
        spectrum = np.fft.rfft(padded)
        spectrum.setflags(write=False)
        _KERNEL_SPECTRUM_CACHE[key] = spectrum
    else:
        _KERNEL_SPECTRUM_HITS += 1
    return spectrum


def kernel_spectrum_stats() -> Dict[str, int]:
    """Kernel-spectrum cache counters: ``hits``, ``misses``, ``size``."""
    return {
        "hits": _KERNEL_SPECTRUM_HITS,
        "misses": _KERNEL_SPECTRUM_MISSES,
        "size": len(_KERNEL_SPECTRUM_CACHE),
    }


#: Cached offset phase ramps (tiny, per sampling grid).
_PHASE_RAMP_CACHE: Dict[Tuple[int, int], np.ndarray] = {}


def _phase_ramp(n_samples: int, sample_offset: int) -> np.ndarray:
    key = (n_samples, sample_offset)
    ramp = _PHASE_RAMP_CACHE.get(key)
    if ramp is None:
        bins = np.arange(n_samples // 2 + 1)
        ramp = np.exp(-2j * np.pi * bins * (sample_offset / n_samples))
        ramp.setflags(write=False)
        _PHASE_RAMP_CACHE[key] = ramp
    return ramp


def _tiled_cycle_spectrum(
    amplitudes: np.ndarray, config: SimConfig, sample_offset: int
) -> np.ndarray:
    """rFFT of the impulse train carrying ``amplitudes`` at each cycle.

    The train places ``amplitudes[:, c]`` at sample ``c*oversample +
    sample_offset``; because the impulses sit on a uniform sub-grid,
    the trace-length DFT is the cycle-count DFT of the amplitudes,
    tiled across the trace bins and phase-ramped by the offset:

    ``rfft(train)[j] = exp(-2*pi*i*j*offset/N) * FFT_c(q)[j mod n_cycles]``
    """
    n_samples = config.n_samples
    n_bins = n_samples // 2 + 1
    n_cycles = config.n_cycles
    cycle_spectrum = np.fft.fft(amplitudes, axis=-1)
    # Tile directly into an n_bins-wide buffer instead of np.tile's
    # oversized intermediate (values identical, one copy less).
    tiled = np.empty(
        (cycle_spectrum.shape[0], n_bins), dtype=cycle_spectrum.dtype
    )
    for lo in range(0, n_bins, n_cycles):
        width = min(n_cycles, n_bins - lo)
        tiled[:, lo : lo + width] = cycle_spectrum[:, :width]
    if sample_offset:
        tiled *= _phase_ramp(n_samples, sample_offset)
    return tiled


def emf_rfft(
    coupling: "CouplingMatrix | CouplingStack",
    record: ActivityRecord,
    switch_cap: float | None = None,
) -> np.ndarray:
    """EMF spectrum per receiver, shape ``(n_receivers, n_bins)`` complex.

    The spectral twin of :func:`emf_waveforms`: the kernel convolution
    is evaluated as a bin-wise product on the trace FFT grid (i.e.
    circularly — the <= one-cycle kernel tail wraps onto the trace
    head instead of being truncated), and the charge train's rFFT comes
    from the closed-form tiling of its cycle-rate DFT instead of a
    long-trace FFT.  ``irfft`` of the result is the engine's rendered
    EMF waveform.

    A :class:`CouplingStack` is synthesized part by part and row-
    stacked, so each row is bit-identical to the standalone render of
    its part (see :class:`CouplingStack`).
    """
    if isinstance(coupling, CouplingStack):
        return np.vstack(
            [emf_rfft(part, record, switch_cap) for part in coupling.parts]
        )
    config = record.config
    rising_q, falling_q = charge_amplitudes(coupling, record, switch_cap)
    spectrum = _tiled_cycle_spectrum(rising_q, config, 0)
    if falling_q is not None:
        spectrum += _tiled_cycle_spectrum(
            falling_q, config, config.oversample // 2
        )
    spectrum *= kernel_spectrum(config)
    return spectrum
