"""Typed events of the run-time monitoring pipeline.

Every stage of the escalation state machine announces what it did by
emitting an event onto an :class:`EventBus`:

* :class:`WindowProcessed` — one measurement window went through the
  MONITOR stage (feature + detector decision per sensor stream);
* :class:`Alarm` — the debounced detector fired on some stream;
* :class:`TrojanIdentified` — the IDENTIFY stage classified the
  alarming window's zero-span envelope;
* :class:`TrojanLocalized` — the LOCALIZE stage narrowed the Trojan
  to a sensor/quadrant position;
* :class:`StateChanged` — the state machine moved between stages.

Events are frozen dataclasses with a flat :meth:`~MonitorEvent.to_dict`
JSON form, so a :class:`JsonlSink` subscriber turns a monitoring
session into an append-only ``.jsonl`` audit log (mirroring the RASC
deployment model: only processed verdicts leave the board, never raw
traces).
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import AnalysisError


class MonitorState(enum.Enum):
    """Stages of the detect→identify→localize escalation machine."""

    MONITOR = "monitor"
    IDENTIFY = "identify"
    LOCALIZE = "localize"


@dataclass(frozen=True)
class MonitorEvent:
    """Base event: where and when something happened.

    Attributes
    ----------
    chip:
        Identity of the monitored chip (fleet member name).
    window:
        Global stream index of the measurement window.
    time_s:
        Wall-clock session time of the window's verdict [s]
        (``(window + 1) * trace_period``).
    """

    chip: str
    window: int
    time_s: float

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-serializable form, tagged with the event type."""
        payload: Dict[str, object] = {"type": type(self).__name__}
        payload.update(asdict(self))
        return payload


@dataclass(frozen=True)
class WindowProcessed(MonitorEvent):
    """One window cleared the MONITOR stage.

    Attributes
    ----------
    scenario:
        Workload scenario of the window (live sources know it; replay
        sources carry whatever the archive recorded).
    features_db:
        Sideband feature per monitored stream [dBuV].
    z:
        Detector z-score per stream (None while warming up).
    alarm:
        Whether any stream completed a debounced alarm on this window.
    """

    scenario: str
    features_db: Tuple[float, ...]
    z: Tuple[Optional[float], ...]
    alarm: bool


@dataclass(frozen=True)
class Alarm(MonitorEvent):
    """The debounced golden-model-free detector fired.

    Attributes
    ----------
    sensor:
        Sensor index of the alarming stream.
    feature_db:
        The alarming window's feature on that stream [dBuV].
    z:
        Its z-score against the self-baseline.
    escalating:
        Whether this alarm starts an identify/localize escalation
        (only the first alarm of a session escalates by default).
    """

    sensor: int
    feature_db: float
    z: float
    escalating: bool


@dataclass(frozen=True)
class TrojanIdentified(MonitorEvent):
    """The IDENTIFY stage classified the alarming envelope.

    Attributes
    ----------
    label:
        Predicted Trojan archetype (``"T1"``..``"T4"``).
    f_probe_hz:
        Sideband frequency the zero-span capture was tuned to [Hz].
    autocorr_peak, dominant_freq_hz:
        The envelope features the rule template decided on.
    """

    label: str
    f_probe_hz: float
    autocorr_peak: float
    dominant_freq_hz: float


@dataclass(frozen=True)
class TrojanLocalized(MonitorEvent):
    """The LOCALIZE stage produced a position estimate.

    Attributes
    ----------
    sensor:
        Hot sensor of the score map.
    quadrant:
        Refined quadrant inside the hot sensor (None if unrefined).
    position_m:
        Estimated (x, y) die position [m].
    margin_db:
        Score gap between the hot sensor and the runner-up [dB].
    """

    sensor: int
    quadrant: Optional[str]
    position_m: Tuple[float, float]
    margin_db: float


@dataclass(frozen=True)
class StateChanged(MonitorEvent):
    """The escalation machine transitioned between stages."""

    previous: str
    current: str


@dataclass(frozen=True)
class Backpressure(MonitorEvent):
    """A producer found a chip's bounded chunk queue full.

    The shared queue-full contract of the in-process
    :class:`~repro.runtime.fleet.FleetScheduler` and the serve
    service's shedding layer: hitting the bound is always announced
    as a typed event — never a silent stall — so operators can see
    *which* chips the system is throttling.

    Attributes
    ----------
    queue_depth:
        Configured bound (chunks allowed in the queue).
    queue_len:
        Queue occupancy when the producer was refused.
    action:
        What the producer did: ``"stall"`` (cooperative scheduler —
        the chunk waits and is delivered later, nothing is lost) or
        ``"shed"`` (serve under overload — the chunk is dropped and a
        :class:`Shed` event follows).
    """

    queue_depth: int
    queue_len: int
    action: str


@dataclass(frozen=True)
class Shed(MonitorEvent):
    """Windows were dropped under overload (serve's shedding layer).

    Attributes
    ----------
    n_windows:
        Monitoring windows lost with the dropped chunk.
    reason:
        Why: ``"queue-full"`` (that chip's bounded queue) or
        ``"overload"`` (the service-wide high-water mark).
    """

    n_windows: int
    reason: str


@dataclass(frozen=True)
class Overload(MonitorEvent):
    """The service crossed (or left) its global queued-work bound.

    Emitted with ``active=True`` when total queued windows rise past
    the high-water mark — new work is shed until drained — and again
    with ``active=False`` on recovery.

    Attributes
    ----------
    queued_windows:
        Total windows queued across every chip at the transition.
    high_water:
        The configured service-wide bound.
    active:
        True entering overload, False on recovery.
    """

    queued_windows: int
    high_water: int
    active: bool


#: Event classes in emission-priority order (schema registry).
EVENT_TYPES: Tuple[type, ...] = (
    WindowProcessed,
    Alarm,
    TrojanIdentified,
    TrojanLocalized,
    StateChanged,
    Backpressure,
    Shed,
    Overload,
)

_EVENT_BY_NAME: Dict[str, type] = {cls.__name__: cls for cls in EVENT_TYPES}


def event_from_dict(payload: Dict[str, object]) -> MonitorEvent:
    """Rebuild an event from its :meth:`MonitorEvent.to_dict` form."""
    kind = payload.get("type")
    cls = _EVENT_BY_NAME.get(str(kind))
    if cls is None:
        raise AnalysisError(f"unknown event type {kind!r}")
    kwargs = {k: v for k, v in payload.items() if k != "type"}
    for key in ("features_db", "z", "position_m"):
        if key in kwargs and isinstance(kwargs[key], list):
            kwargs[key] = tuple(kwargs[key])
    return cls(**kwargs)


class EventBus:
    """Synchronous fan-out of monitor events to subscribers.

    Emission is in-line with the pipeline (no buffering): a subscriber
    sees events in exact decision order, which is what makes the JSONL
    log a faithful session transcript.  Subscriber exceptions
    propagate — a failing sink should stop the session, not silently
    drop audit records.
    """

    def __init__(self) -> None:
        self._subscribers: List[Callable[[MonitorEvent], None]] = []
        self.counts: Dict[str, int] = {}

    def subscribe(self, handler: Callable[[MonitorEvent], None]) -> None:
        """Register a handler invoked for every emitted event."""
        self._subscribers.append(handler)

    def emit(self, event: MonitorEvent) -> None:
        """Deliver one event to every subscriber, in order."""
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        for handler in self._subscribers:
            handler(event)

    @property
    def n_emitted(self) -> int:
        """Total events emitted over the bus."""
        return sum(self.counts.values())


class JsonlSink:
    """Append-only ``.jsonl`` event log.

    One JSON object per line, in emission order.  Use as a context
    manager (or call :meth:`close`) so the log is flushed even when a
    monitoring session aborts mid-stream.
    """

    def __init__(self, path: "str | Path"):
        self.path = Path(path)
        self._handle = self.path.open("w", encoding="utf-8")
        self.n_written = 0

    def __call__(self, event: MonitorEvent) -> None:
        """Write one event as a JSON line (the subscriber hook)."""
        if self._handle.closed:
            raise AnalysisError(f"event sink {self.path} is closed")
        self._handle.write(json.dumps(event.to_dict()) + "\n")
        self.n_written += 1

    def close(self) -> None:
        """Flush and close the log file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: "str | Path") -> List[MonitorEvent]:
    """Parse a :class:`JsonlSink` log back into typed events."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            events.append(event_from_dict(json.loads(line)))
    return events
