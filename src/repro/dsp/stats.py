"""Detection statistics: effect sizes, required measurement counts, ROC.

Table I of the paper compares methods by the *number of measurements*
needed to detect a Trojan (<10 for the PSA, ~100 for backscattering,
>10,000 for external probes and the single on-chip coil).  Rather than
simulating tens of thousands of traces, we estimate the required
measurement count from the measured per-trace effect size with a
standard two-sample power analysis — the same reasoning the prior works
use when they report trace budgets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..errors import AnalysisError


@dataclass(frozen=True)
class DetectionPower:
    """Result of a power analysis for a two-population detector.

    Attributes
    ----------
    effect_size:
        Cohen's d between the Trojan-active and Trojan-inactive
        populations of the detection statistic.
    n_required:
        Measurements required per population for the target power.
    alpha:
        False-positive rate used.
    power:
        Statistical power used.
    """

    effect_size: float
    n_required: int
    alpha: float
    power: float


def cohens_d(active: np.ndarray, inactive: np.ndarray) -> float:
    """Cohen's d with pooled standard deviation."""
    active = np.asarray(active, dtype=float)
    inactive = np.asarray(inactive, dtype=float)
    if active.size < 2 or inactive.size < 2:
        raise AnalysisError("need at least two samples per population")
    n1, n2 = active.size, inactive.size
    v1, v2 = active.var(ddof=1), inactive.var(ddof=1)
    pooled = math.sqrt(((n1 - 1) * v1 + (n2 - 1) * v2) / (n1 + n2 - 2))
    diff = float(active.mean() - inactive.mean())
    if pooled == 0.0:
        # Degenerate (noise-free) separation: effectively infinite d,
        # signed like the mean difference so a *drop* is not mistaken
        # for a detectable increase by the one-sided power analysis.
        return math.copysign(math.inf, diff) if diff != 0.0 else 0.0
    return diff / pooled


def required_measurements(
    effect_size: float, alpha: float = 1e-3, power: float = 0.95
) -> int:
    """Two-sample z-approximation of the per-population sample size.

    ``n = ((z_{1-alpha} + z_{power}) / d)^2`` (one-sided), clamped to at
    least 1.  Every detection statistic in this reproduction alarms on
    an *increase* (added spectral energy, larger distance to the
    reference), so the analysis is one-sided: a non-positive measured
    effect cannot reach the target power at any sample size and
    returns the same sentinel large count as a zero effect.
    """
    if not 0.0 < alpha < 1.0:
        raise AnalysisError(f"alpha must be in (0,1), got {alpha}")
    if not 0.0 < power < 1.0:
        raise AnalysisError(f"power must be in (0,1), got {power}")
    d = float(effect_size)
    if d <= 0.0:
        return 10**9
    if math.isinf(d):
        return 1
    z_alpha = scipy_stats.norm.ppf(1.0 - alpha)
    z_power = scipy_stats.norm.ppf(power)
    n = ((z_alpha + z_power) / d) ** 2
    return max(1, int(math.ceil(n)))


def detection_power(
    active: np.ndarray,
    inactive: np.ndarray,
    alpha: float = 1e-3,
    power: float = 0.95,
) -> DetectionPower:
    """Full power analysis from two measured populations."""
    d = cohens_d(active, inactive)
    return DetectionPower(
        effect_size=d,
        n_required=required_measurements(d, alpha=alpha, power=power),
        alpha=alpha,
        power=power,
    )


def welch_t(a: np.ndarray, b: np.ndarray) -> float:
    """Welch's t statistic between two samples."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise AnalysisError("need at least two samples per population")
    va, vb = a.var(ddof=1), b.var(ddof=1)
    denom = math.sqrt(va / a.size + vb / b.size)
    diff = float(a.mean() - b.mean())
    if denom == 0.0:
        # Signed infinity: zero-variance populations still separate in
        # a definite direction (matching the finite-denominator sign).
        return math.copysign(math.inf, diff) if diff != 0.0 else 0.0
    return diff / denom


def z_score(value: float, baseline: np.ndarray) -> float:
    """z-score of ``value`` against a baseline sample."""
    baseline = np.asarray(baseline, dtype=float)
    if baseline.size < 2:
        raise AnalysisError("baseline needs at least two samples")
    std = baseline.std(ddof=1)
    diff = float(value - baseline.mean())
    if std == 0.0:
        # Signed infinity: a value *below* a zero-variance baseline
        # must not read as an infinitely large increase.
        return math.copysign(math.inf, diff) if diff != 0.0 else 0.0
    return diff / std


def roc_auc(scores_pos: np.ndarray, scores_neg: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic."""
    pos = np.asarray(scores_pos, dtype=float)
    neg = np.asarray(scores_neg, dtype=float)
    if pos.size == 0 or neg.size == 0:
        raise AnalysisError("both score populations must be non-empty")
    # Pairwise comparison; populations here are small (tens of traces).
    wins = (pos[:, None] > neg[None, :]).sum()
    ties = (pos[:, None] == neg[None, :]).sum()
    return float((wins + 0.5 * ties) / (pos.size * neg.size))


def detection_rate(
    scores_active: np.ndarray, scores_baseline: np.ndarray, z_threshold: float
) -> float:
    """Fraction of active-trace scores exceeding a z-score threshold.

    Each active score is z-scored against the baseline population; this
    mirrors how the run-time detector flags traces.
    """
    baseline = np.asarray(scores_baseline, dtype=float)
    active = np.asarray(scores_active, dtype=float)
    if active.size == 0:
        raise AnalysisError("no active scores supplied")
    mean = baseline.mean()
    std = baseline.std(ddof=1)
    if std == 0.0:
        return float(np.mean(active > mean))
    return float(np.mean((active - mean) / std > z_threshold))
