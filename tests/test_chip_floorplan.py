"""Floorplan geometry and region weighting."""

import numpy as np
import pytest

from repro.chip.floorplan import (
    DIE_SIZE,
    POWER_STRIPES,
    Floorplan,
    Rect,
    default_floorplan,
    sensor_rect,
)
from repro.errors import FloorplanError


def test_rect_basics():
    rect = Rect(0.0, 0.0, 2.0, 1.0)
    assert rect.area == pytest.approx(2.0)
    assert rect.center == (1.0, 0.5)
    assert rect.contains(1.0, 0.5)
    assert not rect.contains(3.0, 0.5)


def test_rect_rejects_degenerate():
    with pytest.raises(FloorplanError):
        Rect(0.0, 0.0, 0.0, 1.0)


def test_rect_overlap():
    a = Rect(0, 0, 2, 2)
    b = Rect(1, 1, 3, 3)
    assert a.overlap_area(b) == pytest.approx(1.0)
    assert a.overlap_area(Rect(5, 5, 6, 6)) == 0.0


def test_rect_quadrants_tile():
    rect = Rect(0, 0, 4, 4)
    total = sum(rect.quadrant(q).area for q in ("nw", "ne", "sw", "se"))
    assert total == pytest.approx(rect.area)
    with pytest.raises(FloorplanError):
        rect.quadrant("north")


def test_sensor_rects_cover_die():
    """The 16 sensors jointly cover the full die area."""
    rects = [sensor_rect(i) for i in range(16)]
    assert min(r.x0 for r in rects) == pytest.approx(0.0)
    assert max(r.x1 for r in rects) == pytest.approx(DIE_SIZE, rel=0.02)
    # Row-major indexing: sensor 0 is top-left.
    s0 = sensor_rect(0)
    assert s0.x0 == 0.0
    assert s0.y1 == pytest.approx(DIE_SIZE)


def test_sensor_overlap_fraction():
    """Adjacent sensors share 3/11 of their area (see DESIGN.md)."""
    s5, s6 = sensor_rect(5), sensor_rect(6)
    share = s5.overlap_area(s6) / s5.area
    assert share == pytest.approx(3.0 / 11.0, rel=0.01)


def test_default_floorplan_places_trojans_under_sensor10():
    floorplan = default_floorplan()
    s10 = sensor_rect(10)
    for trojan in ("T1", "T2", "T3", "T4"):
        rect = floorplan.placements[trojan][0]
        assert s10.overlap_area(rect) == pytest.approx(rect.area, rel=1e-9)


def test_trojans_one_per_quadrant():
    floorplan = default_floorplan()
    centers = {
        name: floorplan.placements[name][0].center
        for name in ("T1", "T2", "T3", "T4")
    }
    cx = 22.0 * DIE_SIZE / 35.0
    cy = 14.0 * DIE_SIZE / 35.0
    assert centers["T1"][0] < cx and centers["T1"][1] > cy  # nw
    assert centers["T2"][0] > cx and centers["T2"][1] > cy  # ne
    assert centers["T3"][0] < cx and centers["T3"][1] < cy  # sw
    assert centers["T4"][0] > cx and centers["T4"][1] < cy  # se


def test_sensor0_patch_is_trojan_free():
    floorplan = default_floorplan()
    s0 = sensor_rect(0)
    for trojan in ("T1", "T2", "T3", "T4"):
        rect = floorplan.placements[trojan][0]
        assert s0.overlap_area(rect) == 0.0


def test_module_weights_normalized():
    floorplan = default_floorplan()
    for module in floorplan.placements:
        weights = floorplan.module_weights(module)
        assert weights.shape == (floorplan.n_regions,)
        assert weights.sum() == pytest.approx(1.0, rel=1e-6)
        assert (weights >= 0).all()


def test_region_lookup_consistent():
    floorplan = default_floorplan()
    for region in (0, 17, floorplan.n_regions - 1):
        rect = floorplan.region_rect(region)
        cx, cy = rect.center
        assert floorplan.region_of(cx, cy) == region
    with pytest.raises(FloorplanError):
        floorplan.region_of(-1.0, 0.0)


def test_region_centers_avoid_lattice_wires():
    """Region centers sit mid-cell (see floorplan docstring)."""
    floorplan = default_floorplan()
    pitch = DIE_SIZE / 35.0
    centers = floorplan.region_centers()
    offsets = (centers / pitch) % 1.0
    assert np.allclose(offsets, 0.5, atol=1e-6)


def test_return_points_on_stripes():
    floorplan = default_floorplan()
    sources, returns = floorplan.dipole_pairs()
    assert sources.shape == returns.shape == (floorplan.n_regions, 2)
    for x in returns[:, 0]:
        assert np.min(np.abs(POWER_STRIPES - x)) < 1e-12
    # y coordinates are preserved.
    assert np.allclose(sources[:, 1], returns[:, 1])


def test_trojan_returns_stay_in_sensor10_core():
    """Both Trojan poles must sit in sensor 10's exclusive zone."""
    floorplan = default_floorplan()
    pitch = DIE_SIZE / 35.0
    x_lo, x_hi = 19.0 * pitch, 24.0 * pitch
    for trojan in ("T1", "T2", "T3", "T4"):
        cx, cy = floorplan.placements[trojan][0].center
        rx, _ = floorplan.return_point(cx, cy)
        assert x_lo < cx < x_hi
        assert x_lo < rx < x_hi


def test_floorplan_rejects_out_of_die_modules():
    with pytest.raises(FloorplanError):
        Floorplan({"bad": [Rect(0, 0, 2e-3, 1e-4)]})
